package campaign

import (
	"reflect"
	"sort"
	"testing"
)

// schedulesFromBytes decodes fuzz input into a list of type schedules: 0xFF
// separates schedules, every other byte maps onto a tiny kind alphabet so
// near-duplicate schedules (the interesting admission cases) are common.
func schedulesFromBytes(data []byte) [][]string {
	kinds := []string{"timer", "net-read", "work-done", "close"}
	var out [][]string
	cur := []string{}
	flush := func() {
		if len(out) < 32 { // bound the Levenshtein work per fuzz iteration
			out = append(out, cur)
		}
		cur = []string{}
	}
	for _, b := range data {
		if b == 0xFF {
			flush()
			continue
		}
		if len(cur) < 48 {
			cur = append(cur, kinds[int(b)%len(kinds)])
		}
	}
	flush()
	return out
}

func sortedDigests(c *Corpus) []string {
	d := c.Digests()
	sort.Strings(d)
	return d
}

// FuzzCorpusAdmit checks the corpus admission invariants the campaign
// relies on: the corpus never exceeds its capacity, duplicate schedules
// never mutate state (so admission is order-insensitive for duplicates),
// and a member re-offered is always reported as a duplicate.
func FuzzCorpusAdmit(f *testing.F) {
	f.Add([]byte("abc\xffabd\xffabc\xffzzzz"), uint8(3), uint8(20))
	f.Add([]byte("\xff\xff"), uint8(1), uint8(0))
	f.Add([]byte("aaaaaaa\xffaaaaaab\xffaaaaaac\xffbbbbbbb"), uint8(2), uint8(50))
	f.Fuzz(func(t *testing.T, data []byte, cap8, thr8 uint8) {
		capacity := int(cap8%6) + 1
		threshold := float64(thr8%101) / 100
		schedules := schedulesFromBytes(data)

		// Baseline: admit the sequence once, checking the capacity bound
		// after every single admission.
		base := NewCorpus(threshold, capacity, 0)
		for _, s := range schedules {
			adm := base.Admit(s)
			if base.Len() > capacity {
				t.Fatalf("capacity %d exceeded: len=%d", capacity, base.Len())
			}
			if adm.Admitted && adm.Duplicate {
				t.Fatalf("admission reported both Admitted and Duplicate")
			}
			if adm.Novelty < 0 || adm.Novelty > 1 {
				t.Fatalf("novelty out of range: %v", adm.Novelty)
			}
		}

		// Duplicates interleaved immediately after each offer...
		interleaved := NewCorpus(threshold, capacity, 0)
		for _, s := range schedules {
			interleaved.Admit(s)
			if adm := interleaved.Admit(s); adm.Admitted || !adm.Duplicate {
				t.Fatalf("immediate duplicate mutated corpus: %+v", adm)
			}
		}
		// ...or appended as a full second pass: either way the corpus must
		// end up exactly where the duplicate-free sequence put it.
		appended := NewCorpus(threshold, capacity, 0)
		for _, s := range schedules {
			appended.Admit(s)
		}
		for _, s := range schedules {
			appended.Admit(s)
		}
		want := sortedDigests(base)
		if got := sortedDigests(interleaved); !reflect.DeepEqual(got, want) {
			t.Fatalf("interleaved duplicates changed the corpus:\n got %v\nwant %v", got, want)
		}
		if got := sortedDigests(appended); !reflect.DeepEqual(got, want) {
			t.Fatalf("appended duplicates changed the corpus:\n got %v\nwant %v", got, want)
		}

		// Every current member, re-offered, is a duplicate and changes
		// nothing.
		for _, s := range base.Schedules() {
			if adm := base.Admit(s); adm.Admitted || !adm.Duplicate {
				t.Fatalf("re-offered member not reported duplicate: %+v", adm)
			}
		}
		if got := sortedDigests(base); !reflect.DeepEqual(got, want) {
			t.Fatalf("re-offering members mutated the corpus")
		}
	})
}

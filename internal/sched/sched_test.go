package sched

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"a"}, nil, 1},
		{nil, []string{"a", "b"}, 2},
		{[]string{"a", "b", "c"}, []string{"a", "b", "c"}, 0},
		{[]string{"a", "b", "c"}, []string{"a", "x", "c"}, 1},
		{[]string{"a", "b"}, []string{"b", "a"}, 2},
		{[]string{"timer", "net", "timer"}, []string{"net", "timer"}, 1},
		{[]string{"k", "i", "t", "t", "e", "n"}, []string{"s", "i", "t", "t", "i", "n", "g"}, 3},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// randomSchedule builds a schedule over a small alphabet so collisions are
// common, as in real type schedules.
func randomSchedule(r *rand.Rand, maxLen int) []string {
	alphabet := []string{"timer", "net-read", "work-done", "close", "immediate"}
	n := r.Intn(maxLen)
	s := make([]string, n)
	for i := range s {
		s[i] = alphabet[r.Intn(len(alphabet))]
	}
	return s
}

func TestLevenshteinMetricAxioms(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := randomSchedule(r, 30)
		b := randomSchedule(r, 30)
		c := randomSchedule(r, 30)
		dab := Levenshtein(a, b)
		dba := Levenshtein(b, a)
		if dab != dba {
			t.Fatalf("not symmetric: d(a,b)=%d d(b,a)=%d", dab, dba)
		}
		if Levenshtein(a, a) != 0 {
			t.Fatalf("d(a,a) != 0")
		}
		if dab == 0 && !reflect.DeepEqual(a, b) {
			t.Fatalf("d=0 for unequal schedules %v %v", a, b)
		}
		dac := Levenshtein(a, c)
		dcb := Levenshtein(c, b)
		if dab > dac+dcb {
			t.Fatalf("triangle inequality violated: d(a,b)=%d > %d+%d", dab, dac, dcb)
		}
	}
}

func TestLevenshteinBoundsQuick(t *testing.T) {
	f := func(a, b []string) bool {
		d := Levenshtein(a, b)
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		diff := len(a) - len(b)
		if diff < 0 {
			diff = -diff
		}
		return d >= diff && d <= maxLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedLevenshtein(t *testing.T) {
	if got := NormalizedLevenshtein(nil, nil); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
	a := []string{"x", "y"}
	b := []string{"p", "q", "r", "s"}
	if got := NormalizedLevenshtein(a, a); got != 0 {
		t.Errorf("identical = %v, want 0", got)
	}
	got := NormalizedLevenshtein(a, b)
	if got <= 0 || got > 1 {
		t.Errorf("NLD = %v, want in (0, 1]", got)
	}
	if got := NormalizedLevenshtein([]string{"a"}, []string{"b"}); got != 1 {
		t.Errorf("disjoint singletons = %v, want 1", got)
	}
}

func TestTruncate(t *testing.T) {
	s := []string{"a", "b", "c"}
	if got := Truncate(s, 2); len(got) != 2 {
		t.Errorf("Truncate(3-elem, 2) len=%d", len(got))
	}
	if got := Truncate(s, 10); len(got) != 3 {
		t.Errorf("Truncate(3-elem, 10) len=%d", len(got))
	}
	if got := Truncate(s, -1); len(got) != 3 {
		t.Errorf("Truncate(3-elem, -1) len=%d", len(got))
	}
}

func TestMeanPairwiseNLD(t *testing.T) {
	if got := MeanPairwiseNLD(nil, -1); got != 0 {
		t.Errorf("no schedules = %v, want 0", got)
	}
	same := [][]string{{"a", "b"}, {"a", "b"}, {"a", "b"}}
	if got := MeanPairwiseNLD(same, -1); got != 0 {
		t.Errorf("identical schedules = %v, want 0", got)
	}
	mixed := [][]string{{"a", "a"}, {"b", "b"}}
	if got := MeanPairwiseNLD(mixed, -1); got != 1 {
		t.Errorf("disjoint schedules = %v, want 1", got)
	}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	r.Record("timer", "t1")
	r.Record("net-read", "c1")
	r.Record("timer", "t2")
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	types := r.Types()
	want := []string{"timer", "net-read", "timer"}
	if !reflect.DeepEqual(types, want) {
		t.Fatalf("Types = %v, want %v", types, want)
	}
	entries := r.Entries()
	for i, e := range entries {
		if e.Seq != i {
			t.Errorf("entry %d has Seq %d", i, e.Seq)
		}
	}
	hist := r.Histogram()
	if len(hist) != 2 || hist[1].Kind != "timer" || hist[1].N != 2 {
		t.Fatalf("Histogram = %v", hist)
	}
	if s := r.String(); !strings.Contains(s, "timer(t1)") {
		t.Errorf("String = %q", s)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record("k", "l")
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("Len = %d, want 800", r.Len())
	}
}

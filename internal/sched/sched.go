// Package sched records and compares event-loop schedules.
//
// Node.fz §5.3 approximates a libuv schedule by its "type schedule": the
// sequence of callback-type strings ("timer", "network read", "worker pool
// task", ...) in execution order. The variation between two executions is
// the Levenshtein distance between their type schedules, normalized by the
// maximum possible distance so values are comparable across modules
// (Figure 7).
package sched

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Entry is one executed callback in a schedule.
type Entry struct {
	Seq   int       // execution index, starting at 0
	Kind  string    // callback type, e.g. "timer", "net-read", "work-done"
	Label string    // free-form detail, e.g. the handle or task name
	At    time.Time // wall-clock execution time
}

// Recorder captures the schedule of an execution. It satisfies the event
// loop's Recorder hook. A Recorder is safe for concurrent use: in vanilla
// (non-serialized) mode worker-pool tasks may record concurrently with loop
// callbacks.
//
// The zero value is ready to use.
type Recorder struct {
	// Now supplies entry timestamps; nil means time.Now. Trials running
	// under a virtual clock must point this at the trial clock, or the
	// wall-clock stamps make otherwise deterministic traces diverge.
	Now func() time.Time

	mu      sync.Mutex
	entries []Entry
}

// NewRecorder returns an empty Recorder stamping entries with wall time.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one executed callback to the schedule.
func (r *Recorder) Record(kind, label string) {
	now := time.Now
	if r.Now != nil {
		now = r.Now
	}
	r.mu.Lock()
	r.entries = append(r.entries, Entry{Seq: len(r.entries), Kind: kind, Label: label, At: now()})
	r.mu.Unlock()
}

// Len reports the number of recorded callbacks.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Entries returns a copy of the recorded schedule.
func (r *Recorder) Entries() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, len(r.entries))
	copy(out, r.entries)
	return out
}

// Types returns the type schedule: the Kind of each recorded callback in
// execution order.
func (r *Recorder) Types() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.Kind
	}
	return out
}

// Reset discards all recorded entries.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.entries = r.entries[:0]
	r.mu.Unlock()
}

// String renders the schedule compactly, one "kind(label)" per element.
func (r *Recorder) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for i, e := range r.entries {
		if i > 0 {
			b.WriteByte(' ')
		}
		if e.Label != "" {
			fmt.Fprintf(&b, "%s(%s)", e.Kind, e.Label)
		} else {
			b.WriteString(e.Kind)
		}
	}
	return b.String()
}

// Histogram returns the count of each callback type, with keys in sorted
// order, useful for summarising long schedules.
func (r *Recorder) Histogram() []TypeCount {
	counts := make(map[string]int)
	r.mu.Lock()
	for _, e := range r.entries {
		counts[e.Kind]++
	}
	r.mu.Unlock()
	out := make([]TypeCount, 0, len(counts))
	for k, n := range counts {
		out = append(out, TypeCount{Kind: k, N: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// TypeCount is one row of a schedule histogram.
type TypeCount struct {
	Kind string
	N    int
}

// Levenshtein returns the edit distance (insertions, deletions,
// substitutions, unit cost each) between the two type schedules.
//
// It uses the classic two-row dynamic program: O(len(a)*len(b)) time,
// O(min(len(a),len(b))) space.
func Levenshtein(a, b []string) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	// b is now the shorter schedule.
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ai := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ai == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// NormalizedLevenshtein returns Levenshtein(a, b) divided by the maximum
// possible distance, max(len(a), len(b)), so 0 means identical schedules and
// 1 means nothing in common. Two empty schedules have distance 0.
func NormalizedLevenshtein(a, b []string) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(n)
}

// Truncate returns the first n elements of the schedule (or the schedule
// itself if shorter). Figure 7 considers only the first 20K callbacks of
// each schedule due to the cost of the Levenshtein DP.
func Truncate(s []string, n int) []string {
	if n >= 0 && len(s) > n {
		return s[:n]
	}
	return s
}

// MeanPairwiseNLD computes the mean normalized Levenshtein distance over all
// unordered pairs of the given schedules, truncating each schedule to
// truncate callbacks first (truncate < 0 means no truncation). This is the
// Figure 7 statistic. It returns 0 when fewer than two schedules are given.
func MeanPairwiseNLD(schedules [][]string, truncate int) float64 {
	if len(schedules) < 2 {
		return 0
	}
	ts := make([][]string, len(schedules))
	for i, s := range schedules {
		ts[i] = Truncate(s, truncate)
	}
	var sum float64
	var pairs int
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			sum += NormalizedLevenshtein(ts[i], ts[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}

package sched

import (
	"hash/fnv"
	"strconv"
)

// Digest returns a 64-bit FNV-1a fingerprint of a type schedule. Two
// schedules with the same sequence of kinds share a digest; a NUL byte
// terminates each element so element boundaries are unambiguous (callback
// kinds are short printable identifiers and never contain NUL).
//
// Digests give the campaign corpus O(1) exact-duplicate detection before it
// pays for the O(n*m) Levenshtein novelty computation.
func Digest(types []string) uint64 {
	h := fnv.New64a()
	for _, s := range types {
		_, _ = h.Write([]byte(s))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}

// DigestString renders a digest as fixed-width hex, the form stored in
// campaign checkpoint journals (JSON numbers lose precision above 2^53 in
// some consumers; strings are unambiguous everywhere).
func DigestString(d uint64) string {
	s := strconv.FormatUint(d, 16)
	for len(s) < 16 {
		s = "0" + s
	}
	return s
}

// NearestNLD returns the minimum normalized Levenshtein distance from types
// to any schedule in pool, and the index of that nearest neighbour. An empty
// pool has distance 1 (maximally novel) and index -1.
func NearestNLD(types []string, pool [][]string) (float64, int) {
	best, idx := 1.0, -1
	for i, p := range pool {
		d := NormalizedLevenshtein(types, p)
		if idx == -1 || d < best {
			best, idx = d, i
		}
	}
	if idx == -1 {
		return 1, -1
	}
	return best, idx
}

package sched

import "testing"

func TestDigestBoundaries(t *testing.T) {
	a := Digest([]string{"timer", "net-read"})
	b := Digest([]string{"timer", "net-read"})
	if a != b {
		t.Fatal("digest not deterministic")
	}
	if Digest([]string{"timernet-read"}) == a {
		t.Error("element boundaries not separated")
	}
	if Digest([]string{"net-read", "timer"}) == a {
		t.Error("digest order-insensitive")
	}
	if Digest(nil) != Digest([]string{}) {
		t.Error("nil and empty schedules must share a digest")
	}
	if Digest(nil) == a {
		t.Error("empty schedule collides with non-empty")
	}
}

func TestDigestString(t *testing.T) {
	if got := DigestString(0xab); got != "00000000000000ab" {
		t.Fatalf("DigestString(0xab) = %q", got)
	}
	if len(DigestString(^uint64(0))) != 16 {
		t.Fatal("digest string not fixed width")
	}
}

func TestNearestNLD(t *testing.T) {
	if d, i := NearestNLD([]string{"a"}, nil); d != 1 || i != -1 {
		t.Fatalf("empty pool: got %v, %d", d, i)
	}
	pool := [][]string{
		{"a", "b", "c", "d"},
		{"a", "b", "c"},
		{"x", "y", "z"},
	}
	d, i := NearestNLD([]string{"a", "b", "c"}, pool)
	if i != 1 || d != 0 {
		t.Fatalf("expected exact match at index 1, got d=%v i=%d", d, i)
	}
	d, i = NearestNLD([]string{"x", "y"}, pool)
	if i != 2 {
		t.Fatalf("nearest neighbour should be index 2, got %d (d=%v)", i, d)
	}
}

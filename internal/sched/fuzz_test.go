package sched

import (
	"fmt"
	"testing"
)

// tokens converts fuzz bytes into a type schedule, mapping each byte onto a
// small token alphabet so that matches are common (an all-distinct alphabet
// makes every distance degenerate to max(len(a), len(b))). Schedules are
// capped so the O(n*m) DP stays cheap per fuzz iteration.
func tokens(s []byte) []string {
	const maxLen = 64
	if len(s) > maxLen {
		s = s[:maxLen]
	}
	out := make([]string, len(s))
	for i, b := range s {
		out[i] = fmt.Sprintf("t%d", b%7)
	}
	return out
}

// FuzzLevenshtein checks the metric axioms of the Figure 7 distance:
// identity, symmetry, the triangle inequality, the standard bounds, and
// normalization into [0, 1].
func FuzzLevenshtein(f *testing.F) {
	f.Add([]byte("timer"), []byte("net-read"), []byte("work-done"))
	f.Add([]byte{}, []byte{1, 2, 3}, []byte{1, 1, 1, 1})
	f.Add([]byte{0, 7, 14}, []byte{0, 7}, []byte{7, 0})
	f.Fuzz(func(t *testing.T, ab, bb, cb []byte) {
		a, b, c := tokens(ab), tokens(bb), tokens(cb)

		if d := Levenshtein(a, a); d != 0 {
			t.Fatalf("identity violated: L(a,a) = %d", d)
		}
		dab := Levenshtein(a, b)
		if dba := Levenshtein(b, a); dab != dba {
			t.Fatalf("symmetry violated: L(a,b)=%d L(b,a)=%d", dab, dba)
		}
		dac := Levenshtein(a, c)
		dbc := Levenshtein(b, c)
		if dac > dab+dbc {
			t.Fatalf("triangle inequality violated: L(a,c)=%d > L(a,b)+L(b,c)=%d+%d", dac, dab, dbc)
		}

		lo := len(a) - len(b)
		if lo < 0 {
			lo = -lo
		}
		hi := len(a)
		if len(b) > hi {
			hi = len(b)
		}
		if dab < lo || dab > hi {
			t.Fatalf("bounds violated: L=%d outside [%d, %d] for lens %d/%d", dab, lo, hi, len(a), len(b))
		}

		if n := NormalizedLevenshtein(a, b); n < 0 || n > 1 {
			t.Fatalf("NLD out of range: %v", n)
		}
	})
}

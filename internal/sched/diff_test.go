package sched

import (
	"math/rand"
	"strings"
	"testing"
)

func TestDiffIdentical(t *testing.T) {
	a := []string{"timer", "net-read", "close"}
	ops := Diff(a, a)
	if DiffDistance(ops) != 0 {
		t.Fatalf("distance = %d", DiffDistance(ops))
	}
	for _, op := range ops {
		if op.Kind != "same" {
			t.Fatalf("op = %+v", op)
		}
	}
}

func TestDiffKinds(t *testing.T) {
	a := []string{"timer", "net-read", "work-done"}
	b := []string{"timer", "immediate", "work-done", "close"}
	ops := Diff(a, b)
	kinds := map[string]int{}
	for _, op := range ops {
		kinds[op.Kind]++
	}
	if kinds["sub"] != 1 || kinds["ins"] != 1 || kinds["same"] != 2 {
		t.Fatalf("kinds = %v (ops %+v)", kinds, ops)
	}
	if DiffDistance(ops) != Levenshtein(a, b) {
		t.Fatalf("distance %d != levenshtein %d", DiffDistance(ops), Levenshtein(a, b))
	}
}

func TestDiffEmptySides(t *testing.T) {
	a := []string{"x", "y"}
	ops := Diff(a, nil)
	if len(ops) != 2 || ops[0].Kind != "del" || ops[1].Kind != "del" {
		t.Fatalf("ops = %+v", ops)
	}
	ops = Diff(nil, a)
	if len(ops) != 2 || ops[0].Kind != "ins" {
		t.Fatalf("ops = %+v", ops)
	}
	if len(Diff(nil, nil)) != 0 {
		t.Fatal("diff of empties not empty")
	}
}

// TestDiffDistanceMatchesLevenshteinRandom: the script's cost always equals
// the DP distance — the alignment is minimal.
func TestDiffDistanceMatchesLevenshteinRandom(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		a := randomSchedule(r, 25)
		b := randomSchedule(r, 25)
		ops := Diff(a, b)
		if DiffDistance(ops) != Levenshtein(a, b) {
			t.Fatalf("trial %d: script cost %d != levenshtein %d",
				trial, DiffDistance(ops), Levenshtein(a, b))
		}
		// The script must actually transform a into b.
		var rebuilt []string
		for _, op := range ops {
			if op.Kind == "same" || op.Kind == "sub" || op.Kind == "ins" {
				rebuilt = append(rebuilt, op.B)
			}
		}
		if len(rebuilt) != len(b) {
			t.Fatalf("script rebuilds %d elements, want %d", len(rebuilt), len(b))
		}
		for i := range b {
			if rebuilt[i] != b[i] {
				t.Fatalf("script does not rebuild b at %d", i)
			}
		}
	}
}

func TestFormatDiffElision(t *testing.T) {
	var a, b []string
	for i := 0; i < 30; i++ {
		a = append(a, "timer")
		b = append(b, "timer")
	}
	b[15] = "net-read"
	out := FormatDiff(Diff(a, b), 2)
	if !strings.Contains(out, "unchanged") {
		t.Fatalf("no elision:\n%s", out)
	}
	if !strings.Contains(out, "~ timer -> net-read") {
		t.Fatalf("missing substitution:\n%s", out)
	}
	// Negative context is clamped.
	_ = FormatDiff(Diff(a, b), -1)
}

package sched

import (
	"fmt"
	"strings"
)

// DiffOp is one step of an edit script between two type schedules.
type DiffOp struct {
	// Kind is "same", "sub", "del" (only in a), or "ins" (only in b).
	Kind string
	// A and B are the elements involved ("" when absent).
	A, B string
	// AIdx and BIdx are the positions in each schedule (-1 when absent).
	AIdx, BIdx int
}

// Diff computes a minimal edit script turning schedule a into schedule b
// (the alignment behind the Levenshtein distance). It is the debugging
// companion to Figure 7's aggregate statistic: where the aggregate says
// "these two runs differ by 0.3", the script shows exactly which callbacks
// moved.
func Diff(a, b []string) []DiffOp {
	// Full DP table (the two-row trick cannot reconstruct the path).
	n, m := len(a), len(b)
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
		dp[i][0] = i
	}
	for j := 0; j <= m; j++ {
		dp[0][j] = j
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			dp[i][j] = min3(dp[i-1][j]+1, dp[i][j-1]+1, dp[i-1][j-1]+cost)
		}
	}
	// Backtrack.
	var rev []DiffOp
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && a[i-1] == b[j-1] && dp[i][j] == dp[i-1][j-1]:
			rev = append(rev, DiffOp{Kind: "same", A: a[i-1], B: b[j-1], AIdx: i - 1, BIdx: j - 1})
			i, j = i-1, j-1
		case i > 0 && j > 0 && dp[i][j] == dp[i-1][j-1]+1:
			rev = append(rev, DiffOp{Kind: "sub", A: a[i-1], B: b[j-1], AIdx: i - 1, BIdx: j - 1})
			i, j = i-1, j-1
		case i > 0 && dp[i][j] == dp[i-1][j]+1:
			rev = append(rev, DiffOp{Kind: "del", A: a[i-1], AIdx: i - 1, BIdx: -1})
			i--
		default:
			rev = append(rev, DiffOp{Kind: "ins", B: b[j-1], AIdx: -1, BIdx: j - 1})
			j--
		}
	}
	out := make([]DiffOp, len(rev))
	for k := range rev {
		out[k] = rev[len(rev)-1-k]
	}
	return out
}

// FormatDiff renders an edit script, eliding runs of unchanged elements
// longer than context*2.
func FormatDiff(ops []DiffOp, context int) string {
	if context < 0 {
		context = 0
	}
	var b strings.Builder
	sameRun := 0
	flushElision := func() {
		if sameRun > 2*context {
			fmt.Fprintf(&b, "  ... %d unchanged ...\n", sameRun-2*context)
		}
		sameRun = 0
	}
	// First pass: emit with elision bookkeeping. Keep a small tail buffer
	// of "same" lines so context appears on both sides of a change.
	var tail []string
	for _, op := range ops {
		switch op.Kind {
		case "same":
			sameRun++
			tail = append(tail, fmt.Sprintf("    %s\n", op.A))
			if len(tail) > context {
				tail = tail[1:]
			}
		default:
			flushElision()
			for _, line := range tail {
				b.WriteString(line)
			}
			tail = nil
			switch op.Kind {
			case "sub":
				fmt.Fprintf(&b, "  ~ %s -> %s\n", op.A, op.B)
			case "del":
				fmt.Fprintf(&b, "  - %s\n", op.A)
			case "ins":
				fmt.Fprintf(&b, "  + %s\n", op.B)
			}
		}
	}
	flushElision()
	return b.String()
}

// DiffDistance reports the edit distance of a script (non-"same" ops); it
// equals Levenshtein of the inputs.
func DiffDistance(ops []DiffOp) int {
	d := 0
	for _, op := range ops {
		if op.Kind != "same" {
			d++
		}
	}
	return d
}

package dnssim

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"nodefz/internal/core"
	"nodefz/internal/eventloop"
)

func runLoop(t *testing.T, l *eventloop.Loop) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- l.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("loop did not terminate")
	}
}

func TestLookupResolves(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	r := New(l, Config{Seed: 1, Latency: time.Millisecond})
	r.Register("db.internal", "10.0.0.1", "10.0.0.2")
	var got []string
	r.Lookup("db.internal", func(addrs []string, err error) {
		if err != nil {
			t.Errorf("lookup: %v", err)
			return
		}
		got = addrs
	})
	runLoop(t, l)
	if !reflect.DeepEqual(got, []string{"10.0.0.1", "10.0.0.2"}) {
		t.Fatalf("addrs = %v", got)
	}
}

func TestLookupNXDOMAIN(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	r := New(l, Config{Seed: 2, Latency: time.Millisecond})
	var gotErr error
	r.Lookup("nope.example", func(_ []string, err error) { gotErr = err })
	runLoop(t, l)
	if !errors.Is(gotErr, ErrNotFound) {
		t.Fatalf("err = %v", gotErr)
	}
}

func TestCacheAvoidsSecondWorkerTrip(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	r := New(l, Config{Seed: 3, Latency: time.Millisecond, TTL: time.Second})
	r.Register("h", "1.1.1.1")
	second := false
	r.Lookup("h", func([]string, error) {
		r.Lookup("h", func(addrs []string, err error) {
			second = err == nil && len(addrs) == 1
		})
	})
	runLoop(t, l)
	if !second {
		t.Fatal("cached lookup failed")
	}
	if r.Lookups() != 1 {
		t.Fatalf("worker lookups = %d, want 1 (second was cached)", r.Lookups())
	}
}

func TestCacheExpires(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	r := New(l, Config{Seed: 4, Latency: time.Millisecond, TTL: 5 * time.Millisecond})
	r.Register("h", "1.1.1.1")
	r.Lookup("h", func([]string, error) {
		l.SetTimeout(15*time.Millisecond, func() {
			r.Lookup("h", func([]string, error) {})
		})
	})
	runLoop(t, l)
	if r.Lookups() != 2 {
		t.Fatalf("worker lookups = %d, want 2 (TTL expired)", r.Lookups())
	}
}

func TestStaleCacheSurvivesUnregister(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	r := New(l, Config{Seed: 5, Latency: time.Millisecond, TTL: time.Second})
	r.Register("h", "1.1.1.1")
	var second []string
	r.Lookup("h", func([]string, error) {
		r.Unregister("h")
		r.Lookup("h", func(addrs []string, err error) { second = addrs })
	})
	runLoop(t, l)
	if len(second) != 1 {
		t.Fatalf("stale cached answer missing: %v", second)
	}
	// After flushing, the record is really gone.
	r.FlushCache()
	var gotErr error
	r.Lookup("h", func(_ []string, err error) { gotErr = err })
	runLoop(t, l)
	if !errors.Is(gotErr, ErrNotFound) {
		t.Fatalf("err = %v after flush+unregister", gotErr)
	}
}

func TestCallbackGetsCopy(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	r := New(l, Config{Seed: 6, Latency: time.Millisecond, TTL: time.Second})
	r.Register("h", "1.1.1.1", "2.2.2.2")
	r.Lookup("h", func(addrs []string, err error) {
		addrs[0] = "mutated" // must not corrupt the cache
		r.Lookup("h", func(addrs2 []string, err error) {
			if addrs2[0] != "1.1.1.1" {
				t.Errorf("cache corrupted by callback mutation: %v", addrs2)
			}
		})
	})
	runLoop(t, l)
}

func TestConcurrentLookupsUnderFuzzer(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		l := eventloop.New(eventloop.Options{
			Scheduler: core.NewScheduler(core.StandardParams(), seed),
		})
		r := New(l, Config{Seed: seed, Latency: time.Millisecond})
		hosts := []string{"a", "b", "c", "d"}
		for _, h := range hosts {
			r.Register(h, h+".addr")
		}
		resolved := 0
		for _, h := range hosts {
			h := h
			r.Lookup(h, func(addrs []string, err error) {
				if err == nil && len(addrs) == 1 && addrs[0] == h+".addr" {
					resolved++
				}
			})
		}
		runLoop(t, l)
		if resolved != len(hosts) {
			t.Fatalf("seed %d: resolved %d/%d", seed, resolved, len(hosts))
		}
	}
}

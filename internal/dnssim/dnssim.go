// Package dnssim simulates asynchronous DNS resolution the way Node.js
// provides it (§2.2): dns lookups are blocking C calls executed on the
// libuv worker pool, so every resolution is a worker-pool task whose
// completion callback competes for schedule order with all other events —
// one more source of nondeterminism for the fuzzer to amplify.
//
// The resolver keeps a positive cache with TTLs; cache hits complete
// asynchronously but without a worker-pool round trip (a NextTick), which
// is itself schedule-relevant: a host's first lookup and its subsequent
// cached lookups take differently-ordered paths.
package dnssim

import (
	"errors"
	"math/rand"

	"nodefz/internal/frand"
	"sync"
	"time"

	"nodefz/internal/eventloop"
)

// ErrNotFound is the NXDOMAIN analogue.
var ErrNotFound = errors.New("dnssim: no such host")

type cacheEntry struct {
	addrs   []string
	expires time.Time
}

// Resolver is an asynchronous DNS resolver bound to one loop.
type Resolver struct {
	loop    *eventloop.Loop
	latency time.Duration
	ttl     time.Duration

	mu      sync.Mutex
	rng     *rand.Rand
	records map[string][]string
	cache   map[string]cacheEntry
	lookups int // worker-pool round trips performed
}

// Config parameterizes a Resolver.
type Config struct {
	// Seed drives the per-query latency jitter.
	Seed int64
	// Latency is the base upstream query time (jittered ±50%); default 2ms.
	Latency time.Duration
	// TTL is how long a resolved record is cached; default 30ms (scaled to
	// this repository's millisecond world). <= 0 disables caching.
	TTL time.Duration
}

// New builds a resolver.
func New(l *eventloop.Loop, cfg Config) *Resolver {
	if cfg.Latency <= 0 {
		cfg.Latency = 2 * time.Millisecond
	}
	if cfg.TTL == 0 {
		cfg.TTL = 30 * time.Millisecond
	}
	return &Resolver{
		loop:    l,
		latency: cfg.Latency,
		ttl:     cfg.TTL,
		rng:     frand.New(cfg.Seed),
		records: make(map[string][]string),
		cache:   make(map[string]cacheEntry),
	}
}

// Register installs the authoritative records for host. Later calls
// replace earlier ones (and do not disturb cached copies — stale cache is
// part of real DNS behaviour).
func (r *Resolver) Register(host string, addrs ...string) {
	r.mu.Lock()
	r.records[host] = append([]string(nil), addrs...)
	r.mu.Unlock()
}

// Unregister removes host's records; cached entries survive until expiry.
func (r *Resolver) Unregister(host string) {
	r.mu.Lock()
	delete(r.records, host)
	r.mu.Unlock()
}

// Lookups reports how many worker-pool (non-cached) resolutions ran.
func (r *Resolver) Lookups() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookups
}

// FlushCache drops every cached record.
func (r *Resolver) FlushCache() {
	r.mu.Lock()
	r.cache = make(map[string]cacheEntry)
	r.mu.Unlock()
}

func (r *Resolver) queryTime() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	half := int64(r.latency / 2)
	return r.latency/2 + time.Duration(r.rng.Int63n(2*half+1))
}

// Lookup resolves host; cb runs on the loop with a copy of the addresses
// or ErrNotFound. Cache hits complete on the next tick; misses go through
// the worker pool with the configured latency. Must be called from the
// loop (or before Run).
func (r *Resolver) Lookup(host string, cb func(addrs []string, err error)) {
	if cb == nil {
		cb = func([]string, error) {}
	}
	clk := r.loop.Clock()
	r.mu.Lock()
	if e, ok := r.cache[host]; ok && clk.Now().Before(e.expires) {
		addrs := append([]string(nil), e.addrs...)
		r.mu.Unlock()
		r.loop.NextTickNamed("dns-cached", func() { cb(addrs, nil) })
		return
	}
	r.mu.Unlock()

	// The upstream latency rides on the task (not a sleep inside the work
	// function) so the pool charges it to the trial clock — simulated time
	// under a virtual clock, a real sleep otherwise.
	r.loop.QueueWorkLatency("dns:"+host, r.queryTime(),
		func() (any, error) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.lookups++
			addrs, ok := r.records[host]
			if !ok {
				return nil, ErrNotFound
			}
			out := append([]string(nil), addrs...)
			if r.ttl > 0 {
				r.cache[host] = cacheEntry{addrs: out, expires: clk.Now().Add(r.ttl)}
			}
			return out, nil
		},
		func(res any, err error) {
			if err != nil {
				cb(nil, err)
				return
			}
			cb(append([]string(nil), res.([]string)...), nil)
		})
}

package loadgen

import (
	"math"
	"time"

	"nodefz/internal/eventloop"
	"nodefz/internal/frand"
)

// Curve selects the rate shape of an open-loop arrival process.
type Curve int

const (
	// Steady holds the base rate.
	Steady Curve = iota
	// Diurnal modulates the rate sinusoidally over Period — the compressed
	// day/night cycle of a public-facing service.
	Diurnal
	// Burst multiplies the rate by BurstFactor inside periodic windows —
	// thundering herds against a quiet baseline.
	Burst
)

// Arrival is an open-loop (arrival-curve) workload: requests fire at
// process-generated instants regardless of how the system keeps up, unlike
// Config's closed-loop clients that wait for each response. Inter-arrival
// gaps are exponential around the instantaneous rate (a Poisson process
// whose intensity follows Curve), drawn from a seeded generator, so the
// whole arrival schedule is a deterministic function of Seed.
//
// The cluster corpus drives its background read traffic with one of these:
// open-loop arrivals keep pressure on the replicas' loops during partitions
// and view changes, when a closed-loop client would simply stall.
type Arrival struct {
	// Seed drives the inter-arrival draws.
	Seed int64
	// Rate is the baseline intensity in arrivals per second. Default 200.
	Rate float64
	// Curve is the rate shape; Steady when unset.
	Curve Curve
	// Period is the diurnal cycle length. Default 50ms (a compressed day —
	// trial timescales are milliseconds).
	Period time.Duration
	// Amplitude is the diurnal swing: the rate varies between
	// Rate*(1-Amplitude) and Rate*(1+Amplitude). Default 0.8.
	Amplitude float64
	// BurstEvery and BurstLen place the burst windows: the first BurstLen of
	// every BurstEvery runs at Rate*BurstFactor. Defaults 25ms, 5ms, 8.
	BurstEvery  time.Duration
	BurstLen    time.Duration
	BurstFactor float64
}

func (a *Arrival) fill() {
	if a.Rate <= 0 {
		a.Rate = 200
	}
	if a.Period <= 0 {
		a.Period = 50 * time.Millisecond
	}
	if a.Amplitude <= 0 || a.Amplitude > 1 {
		a.Amplitude = 0.8
	}
	if a.BurstEvery <= 0 {
		a.BurstEvery = 25 * time.Millisecond
	}
	if a.BurstLen <= 0 || a.BurstLen > a.BurstEvery {
		a.BurstLen = 5 * time.Millisecond
	}
	if a.BurstFactor <= 0 {
		a.BurstFactor = 8
	}
}

// RateAt is the instantaneous intensity (arrivals/sec) at offset t from the
// start of the process.
func (a Arrival) RateAt(t time.Duration) float64 {
	a.fill()
	switch a.Curve {
	case Diurnal:
		phase := 2 * math.Pi * float64(t%a.Period) / float64(a.Period)
		r := a.Rate * (1 + a.Amplitude*math.Sin(phase))
		if min := a.Rate * 0.05; r < min {
			r = min
		}
		return r
	case Burst:
		if t%a.BurstEvery < a.BurstLen {
			return a.Rate * a.BurstFactor
		}
		return a.Rate
	default:
		return a.Rate
	}
}

// Drive schedules fire(i) on l at each arrival instant until the process
// offset passes `until`; fire runs in its own timer unit, so consecutive
// arrivals are independent events to the scheduler and the oracle. Call
// with the loop set up but not yet running (or from a loop callback).
func (a Arrival) Drive(l *eventloop.Loop, until time.Duration, fire func(i int)) {
	a.fill()
	rng := frand.New(a.Seed)
	elapsed := time.Duration(0)
	i := 0
	var schedule func()
	schedule = func() {
		u := rng.Float64()
		for u <= 0 {
			u = rng.Float64()
		}
		gap := time.Duration(-math.Log(u) / a.RateAt(elapsed) * float64(time.Second))
		// Substrate floor: the corpus keeps every interval above the stock
		// kernel's timer granularity story; collapse ultra-short gaps.
		if gap < 100*time.Microsecond {
			gap = 100 * time.Microsecond
		}
		elapsed += gap
		if elapsed > until {
			return
		}
		n := i
		i++
		l.SetTimeoutNamed("arrival", gap, func() {
			fire(n)
			schedule()
		})
	}
	schedule()
}

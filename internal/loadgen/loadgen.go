// Package loadgen generates closed-loop HTTP client workloads against an
// httpsim server and reports throughput and latency quantiles. The
// evaluation uses it to measure runtime overhead on server-shaped traffic
// (the §5.4 question asked of a live system rather than a test suite), and
// examples use it to put realistic load on their servers.
package loadgen

import (
	"fmt"
	"nodefz/internal/frand"
	"sort"
	"time"

	"nodefz/internal/eventloop"
	"nodefz/internal/httpsim"
	"nodefz/internal/simnet"
)

// Config shapes a workload.
type Config struct {
	// Seed drives think-time jitter and path selection.
	Seed int64
	// Clients is the number of concurrent closed-loop clients (each with
	// its own connection). Default 4.
	Clients int
	// RequestsPerClient is how many requests each client issues in
	// sequence. Default 10.
	RequestsPerClient int
	// ThinkTime is the mean pause between a response and the client's next
	// request, jittered ±50%. Zero means back-to-back.
	ThinkTime time.Duration
	// Paths are requested round-robin per client; default ["/"].
	Paths []string
}

func (c *Config) fill() {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.RequestsPerClient <= 0 {
		c.RequestsPerClient = 10
	}
	if len(c.Paths) == 0 {
		c.Paths = []string{"/"}
	}
}

// Result summarizes one workload execution.
type Result struct {
	Requests  int
	Errors    int
	Elapsed   time.Duration
	latencies []time.Duration
}

// Throughput is requests per second over the workload's lifetime.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// Quantile returns the q-th (0..1) latency quantile; zero with no samples.
func (r Result) Quantile(q float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%d requests (%d errors) in %v — %.0f req/s, p50 %v, p95 %v",
		r.Requests, r.Errors, r.Elapsed.Round(time.Millisecond), r.Throughput(),
		r.Quantile(0.50).Round(100*time.Microsecond),
		r.Quantile(0.95).Round(100*time.Microsecond))
}

// Run drives the workload against addr on the given loop; done runs on the
// loop with the result once every client has finished. Must be called from
// the loop (or before Run).
func Run(l *eventloop.Loop, net *simnet.Network, addr string, cfg Config, done func(Result)) {
	cfg.fill()
	rng := frand.New(cfg.Seed)
	clk := l.Clock()
	res := &Result{}
	start := clk.Now()
	remainingClients := cfg.Clients

	clientDone := func() {
		remainingClients--
		if remainingClients == 0 {
			res.Elapsed = clk.Since(start)
			done(*res)
		}
	}

	for c := 0; c < cfg.Clients; c++ {
		c := c
		httpsim.NewClient(l, net, addr, 1, func(hc *httpsim.Client, err error) {
			if err != nil {
				res.Errors++
				clientDone()
				return
			}
			issued := 0
			var next func()
			next = func() {
				if issued == cfg.RequestsPerClient {
					hc.Close()
					clientDone()
					return
				}
				path := cfg.Paths[(c+issued)%len(cfg.Paths)]
				issued++
				reqStart := clk.Now()
				hc.Get(path, func(resp *httpsim.Response, err error) {
					res.Requests++
					if err != nil || resp.Status >= 400 {
						res.Errors++
					}
					res.latencies = append(res.latencies, clk.Since(reqStart))
					if cfg.ThinkTime <= 0 {
						next()
						return
					}
					half := int64(cfg.ThinkTime / 2)
					pause := cfg.ThinkTime/2 + time.Duration(rng.Int63n(2*half+1))
					l.SetTimeoutNamed("think", pause, next)
				})
			}
			next()
		})
	}
}

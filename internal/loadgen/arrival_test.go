package loadgen

import (
	"testing"
	"time"

	"nodefz/internal/eventloop"
	"nodefz/internal/vclock"
)

// collectArrivals drives the process on a virtual-clock loop and returns
// the virtual offset of every fire.
func collectArrivals(t *testing.T, a Arrival, until time.Duration) []time.Duration {
	t.Helper()
	clk := vclock.NewVirtual()
	l := eventloop.New(eventloop.Options{Clock: clk})
	start := clk.Now()
	var offs []time.Duration
	a.Drive(l, until, func(i int) {
		if i != len(offs) {
			t.Errorf("fire index %d out of order (have %d arrivals)", i, len(offs))
		}
		offs = append(offs, clk.Now().Sub(start))
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	return offs
}

// TestArrivalDeterministic: the whole arrival schedule is a pure function
// of the seed — same seed, same instants to the nanosecond; a different
// seed diverges. This is what lets a cluster trial that includes open-loop
// background traffic stay replayable.
func TestArrivalDeterministic(t *testing.T) {
	for _, curve := range []Curve{Steady, Diurnal, Burst} {
		a := Arrival{Seed: 42, Rate: 500, Curve: curve}
		one := collectArrivals(t, a, 100*time.Millisecond)
		two := collectArrivals(t, a, 100*time.Millisecond)
		if len(one) == 0 {
			t.Fatalf("curve %d: no arrivals", curve)
		}
		if len(one) != len(two) {
			t.Fatalf("curve %d: %d vs %d arrivals on replay", curve, len(one), len(two))
		}
		for i := range one {
			if one[i] != two[i] {
				t.Fatalf("curve %d: arrival %d at %v vs %v on replay", curve, i, one[i], two[i])
			}
		}
		other := collectArrivals(t, Arrival{Seed: 43, Rate: 500, Curve: curve}, 100*time.Millisecond)
		same := len(other) == len(one)
		if same {
			for i := range one {
				if one[i] != other[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("curve %d: seeds 42 and 43 produced identical schedules", curve)
		}
	}
}

// TestDiurnalRateShape: the sinusoid peaks a quarter-period in at
// Rate*(1+Amplitude), bottoms out three quarters in at Rate*(1-Amplitude),
// and crosses the baseline at the period boundaries.
func TestDiurnalRateShape(t *testing.T) {
	a := Arrival{Rate: 1000, Curve: Diurnal, Period: 40 * time.Millisecond, Amplitude: 0.8}
	approx := func(got, want float64) bool {
		d := got - want
		return d < 1e-6 && d > -1e-6
	}
	if r := a.RateAt(0); !approx(r, 1000) {
		t.Fatalf("rate at phase 0 = %v, want baseline 1000", r)
	}
	if r := a.RateAt(10 * time.Millisecond); !approx(r, 1800) {
		t.Fatalf("rate at peak = %v, want 1800", r)
	}
	if r := a.RateAt(30 * time.Millisecond); !approx(r, 200) {
		t.Fatalf("rate at trough = %v, want 200", r)
	}
	// The cycle repeats: one full period later the peak reads the same.
	if r := a.RateAt(50 * time.Millisecond); !approx(r, 1800) {
		t.Fatalf("rate one period past the peak = %v, want 1800", r)
	}
	// The 5% floor keeps a deep trough from starving the process entirely.
	deep := Arrival{Rate: 1000, Curve: Diurnal, Amplitude: 1.0}
	if r := deep.RateAt(37500 * time.Microsecond); !approx(r, 50) {
		t.Fatalf("floored trough = %v, want 50", r)
	}
}

// TestBurstDensity: arrivals inside the burst windows are several times
// denser than the baseline between them. Rates stay under the 100µs
// inter-arrival floor (10k/s) so the floor does not flatten the burst.
func TestBurstDensity(t *testing.T) {
	a := Arrival{Seed: 7, Rate: 500, Curve: Burst,
		BurstEvery: 25 * time.Millisecond, BurstLen: 5 * time.Millisecond, BurstFactor: 8}
	const until = 200 * time.Millisecond
	offs := collectArrivals(t, a, until)
	if len(offs) < 50 {
		t.Fatalf("only %d arrivals in %v", len(offs), until)
	}
	var in, out int
	for _, off := range offs {
		if off%a.BurstEvery < a.BurstLen {
			in++
		} else {
			out++
		}
	}
	// Burst windows are 1/5 of the timeline, so equal densities would put
	// ~20% of arrivals inside. An 8x burst predicts 8/(8+4) = 2/3 inside;
	// demand at least half, which no seed should miss by chance.
	if in < (in+out)/2 {
		t.Fatalf("burst windows hold %d of %d arrivals — no densification", in, in+out)
	}
	inRate := float64(in) / (float64(until/a.BurstEvery) * a.BurstLen.Seconds())
	outRate := float64(out) / (float64(until/a.BurstEvery) * (a.BurstEvery - a.BurstLen).Seconds())
	if inRate < 4*outRate {
		t.Fatalf("in-window rate %.0f/s vs baseline %.0f/s — want >=4x densification", inRate, outRate)
	}
}

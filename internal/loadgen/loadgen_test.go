package loadgen

import (
	"strings"
	"testing"
	"time"

	"nodefz/internal/core"
	"nodefz/internal/eventloop"
	"nodefz/internal/httpsim"
	"nodefz/internal/simnet"
)

// serve starts a small API and runs the workload against it.
func serve(t *testing.T, sched eventloop.Scheduler, cfg Config) Result {
	t.Helper()
	l := eventloop.New(eventloop.Options{Scheduler: sched})
	net := simnet.New(simnet.Config{Seed: cfg.Seed, MinLatency: 300 * time.Microsecond, MaxLatency: time.Millisecond})
	defer net.Close()
	srv, err := httpsim.NewServer(l, net, "api")
	if err != nil {
		t.Fatal(err)
	}
	srv.Handle("GET", "/", func(w *httpsim.ResponseWriter, r *httpsim.Request) {
		w.Text(httpsim.StatusOK, "ok")
	})
	srv.Handle("GET", "/compute", func(w *httpsim.ResponseWriter, r *httpsim.Request) {
		l.QueueWork("compute", func() (any, error) {
			time.Sleep(300 * time.Microsecond)
			return "42", nil
		}, func(res any, err error) {
			w.Text(httpsim.StatusOK, res.(string))
		})
	})
	var out Result
	Run(l, net, "api", cfg, func(r Result) {
		out = r
		srv.Close()
	})
	done := make(chan error, 1)
	go func() { done <- l.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("workload did not finish")
	}
	return out
}

func TestWorkloadCompletesAllRequests(t *testing.T) {
	cfg := Config{Seed: 1, Clients: 3, RequestsPerClient: 5, Paths: []string{"/", "/compute"}}
	res := serve(t, eventloop.VanillaScheduler{}, cfg)
	if res.Requests != 15 {
		t.Fatalf("requests = %d, want 15", res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
	if res.Quantile(0.5) <= 0 || res.Quantile(0.95) < res.Quantile(0.5) {
		t.Fatalf("quantiles inconsistent: p50=%v p95=%v", res.Quantile(0.5), res.Quantile(0.95))
	}
	if !strings.Contains(res.String(), "req/s") {
		t.Error("String() malformed")
	}
}

func TestWorkloadWithThinkTime(t *testing.T) {
	cfg := Config{Seed: 2, Clients: 2, RequestsPerClient: 3, ThinkTime: 2 * time.Millisecond}
	res := serve(t, eventloop.VanillaScheduler{}, cfg)
	if res.Requests != 6 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d", res.Requests, res.Errors)
	}
	// 2 think pauses per client at >=1ms each.
	if res.Elapsed < 2*time.Millisecond {
		t.Fatalf("elapsed %v implausibly short for think time", res.Elapsed)
	}
}

func TestWorkloadUnderFuzzer(t *testing.T) {
	cfg := Config{Seed: 3, Clients: 3, RequestsPerClient: 4, Paths: []string{"/", "/compute"}}
	res := serve(t, core.NewScheduler(core.StandardParams(), 3), cfg)
	if res.Requests != 12 || res.Errors != 0 {
		t.Fatalf("under fuzzing: requests=%d errors=%d", res.Requests, res.Errors)
	}
}

func TestWorkloadRefusedServer(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	net := simnet.New(simnet.Config{Seed: 4, MinLatency: 300 * time.Microsecond, MaxLatency: time.Millisecond})
	defer net.Close()
	var out Result
	Run(l, net, "nowhere", Config{Clients: 2, RequestsPerClient: 3}, func(r Result) { out = r })
	done := make(chan error, 1)
	go func() { done <- l.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("hang")
	}
	if out.Errors != 2 || out.Requests != 0 {
		t.Fatalf("refused: %+v", out)
	}
}

func TestResultQuantileEdges(t *testing.T) {
	var r Result
	if r.Quantile(0.5) != 0 {
		t.Error("empty quantile != 0")
	}
	r.latencies = []time.Duration{3, 1, 2}
	if r.Quantile(0) != 1 || r.Quantile(1) != 3 {
		t.Errorf("q0=%v q1=%v", r.Quantile(0), r.Quantile(1))
	}
	if (Result{}).Throughput() != 0 {
		t.Error("empty throughput != 0")
	}
}

// TestSoakUnderFuzzer is the long-lived-server check §3's third difference
// motivates ("server-side programs are much longer-lived ... thousands or
// millions of events"): a sustained closed-loop workload under the fuzzer,
// hundreds of requests across thousands of loop events, zero errors.
func TestSoakUnderFuzzer(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	l := eventloop.New(eventloop.Options{Scheduler: core.NewScheduler(core.StandardParams(), 99)})
	net := simnet.New(simnet.Config{Seed: 99, MinLatency: 200 * time.Microsecond, MaxLatency: 800 * time.Microsecond})
	defer net.Close()
	srv, err := httpsim.NewServer(l, net, "api")
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	srv.Handle("GET", "/", func(w *httpsim.ResponseWriter, r *httpsim.Request) {
		hits++
		if hits%3 == 0 {
			l.SetImmediate(func() { w.Text(httpsim.StatusOK, "deferred") })
			return
		}
		w.Text(httpsim.StatusOK, "ok")
	})
	var out Result
	Run(l, net, "api", Config{Seed: 99, Clients: 6, RequestsPerClient: 60}, func(r Result) {
		out = r
		srv.Close()
	})
	done := make(chan error, 1)
	go func() { done <- l.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("soak did not finish")
	}
	if out.Requests != 360 || out.Errors != 0 {
		t.Fatalf("soak: %+v", out)
	}
	if st := l.Stats(); st.Callbacks < 700 {
		t.Fatalf("soak exercised only %d callbacks", st.Callbacks)
	}
}

package conformance

import (
	"errors"
	"fmt"
	"time"

	"nodefz/internal/asyncutil"
	"nodefz/internal/eventloop"
)

// promiseSuite checks the promise layer's documented guarantees —
// microtask-before-macrotask ordering, combinator completion semantics,
// cancellation, and adoption — under any scheduler; appended to Suite.
func promiseSuite() []Scenario {
	return []Scenario{
		{"promise-microtask-before-immediate", promiseMicrotaskFirst},
		{"promise-all-collects-in-order", promiseAllOrder},
		{"promise-any-aggregate", promiseAnyAggregate},
		{"promise-allsettled-total", promiseAllSettledTotal},
		{"promise-abort-cancels", promiseAbortCancels},
		{"promise-adoption-flattens", promiseAdoptionFlattens},
	}
}

// promiseMicrotaskFirst: a settlement handler is a microtask; it runs
// before any immediate registered in the same callback, under any mode.
func promiseMicrotaskFirst(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	var order []string
	l.SetImmediate(func() { order = append(order, "immediate") })
	asyncutil.ResolvedPromise(l, nil).
		Then(func(any) (any, error) { order = append(order, "then"); return nil, nil })
	if err := runLoop(l); err != nil {
		return err
	}
	want := []string{"then", "immediate"}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		return fmt.Errorf("order = %v, want %v", order, want)
	}
	return nil
}

// promiseAllOrder: PromiseAll's result vector is in input order no matter
// which input settles first — the commutativity guarantee that makes it a
// COV fix.
func promiseAllOrder(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	r := asyncutil.TrackRejections(l)
	n := 5
	ps := make([]*asyncutil.Promise, n)
	for i := range ps {
		i := i
		// Stagger deadlines against index order so the fuzzer has real
		// reorderings to explore.
		d := time.Duration((seed+int64(i*7))%5) * time.Millisecond
		ps[i] = asyncutil.NewPromise(l, func(resolve func(any), _ func(error)) {
			l.SetTimeout(d, func() { resolve(i) })
		})
	}
	var got []any
	asyncutil.PromiseAll(l, ps).Then(func(v any) (any, error) {
		got = v.([]any)
		return nil, nil
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if len(got) != n {
		return fmt.Errorf("All resolved with %d values, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			return fmt.Errorf("got[%d] = %v, want %d (input order violated)", i, v, i)
		}
	}
	if len(r.Unhandled()) != 0 {
		return fmt.Errorf("unhandled rejections: %v", r.Unhandled())
	}
	return nil
}

// promiseAnyAggregate: PromiseAny rejects only when every input rejected,
// and then only with an AggregateError carrying all reasons in input order.
func promiseAnyAggregate(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	n := 4
	ps := make([]*asyncutil.Promise, n)
	for i := range ps {
		i := i
		d := time.Duration((seed+int64(i*3))%4) * time.Millisecond
		ps[i] = asyncutil.NewPromise(l, func(_ func(any), reject func(error)) {
			l.SetTimeout(d, func() { reject(fmt.Errorf("r%d", i)) })
		})
	}
	var gotErr error
	fulfilled := false
	asyncutil.PromiseAny(l, ps).
		Then(func(any) (any, error) { fulfilled = true; return nil, nil }).
		Catch(func(err error) (any, error) { gotErr = err; return nil, nil })
	if err := runLoop(l); err != nil {
		return err
	}
	if fulfilled {
		return errors.New("Any fulfilled though every input rejected")
	}
	var agg *asyncutil.AggregateError
	if !errors.As(gotErr, &agg) {
		return fmt.Errorf("Any rejected with %T (%v), want *AggregateError", gotErr, gotErr)
	}
	if len(agg.Errors) != n {
		return fmt.Errorf("aggregate carries %d reasons, want %d", len(agg.Errors), n)
	}
	for i, e := range agg.Errors {
		if e == nil || e.Error() != fmt.Sprintf("r%d", i) {
			return fmt.Errorf("reason[%d] = %v, want r%d (input order violated)", i, e, i)
		}
	}
	return nil
}

// promiseAllSettledTotal: AllSettled resolves exactly once with one
// Settlement per input, never rejects, and leaves no rejection unhandled.
func promiseAllSettledTotal(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	r := asyncutil.TrackRejections(l)
	n := 6
	ps := make([]*asyncutil.Promise, n)
	for i := range ps {
		i := i
		d := time.Duration((seed+int64(i*5))%4) * time.Millisecond
		ps[i] = asyncutil.NewPromise(l, func(resolve func(any), reject func(error)) {
			l.SetTimeout(d, func() {
				if i%2 == 1 {
					reject(fmt.Errorf("odd %d", i))
				} else {
					resolve(i)
				}
			})
		})
	}
	var outcomes []asyncutil.Settlement
	rejected := false
	asyncutil.PromiseAllSettled(l, ps).
		Then(func(v any) (any, error) { outcomes = v.([]asyncutil.Settlement); return nil, nil }).
		Catch(func(error) (any, error) { rejected = true; return nil, nil })
	if err := runLoop(l); err != nil {
		return err
	}
	if rejected {
		return errors.New("AllSettled rejected")
	}
	if len(outcomes) != n {
		return fmt.Errorf("AllSettled reported %d outcomes, want %d", len(outcomes), n)
	}
	for i, s := range outcomes {
		wantStatus := asyncutil.Fulfilled
		if i%2 == 1 {
			wantStatus = asyncutil.Rejected
		}
		if s.Status != wantStatus {
			return fmt.Errorf("outcome[%d].Status = %q, want %q", i, s.Status, wantStatus)
		}
	}
	if len(r.Unhandled()) != 0 {
		return fmt.Errorf("unhandled rejections: %v", r.Unhandled())
	}
	return nil
}

// promiseAbortCancels: aborting releases dependents with a cancellation
// error exactly once, regardless of how the abort interleaves with other
// work; an already-settled promise is immune.
func promiseAbortCancels(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	ctrl := asyncutil.NewAbortController(l)
	never := asyncutil.NewPromise(l, func(func(any), func(error)) {})
	settles := 0
	var gotErr error
	never.WithSignal(ctrl.Signal()).
		Then(func(any) (any, error) { settles++; return nil, nil }).
		Catch(func(err error) (any, error) { settles++; gotErr = err; return nil, nil })
	done := asyncutil.ResolvedPromise(l, "ok").WithSignal(ctrl.Signal())
	var immune any
	done.Then(func(v any) (any, error) { immune = v; return nil, nil })
	done.Catch(func(err error) (any, error) { return nil, fmt.Errorf("settled promise aborted: %w", err) })
	l.SetTimeout(time.Duration(seed%3+1)*time.Millisecond, func() {
		ctrl.Abort(nil)
		ctrl.Abort(errors.New("second")) // no-op
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if settles != 1 {
		return fmt.Errorf("dependent settled %d times, want exactly 1", settles)
	}
	if !asyncutil.IsAborted(gotErr) {
		return fmt.Errorf("dependent rejected with %v, want a cancellation error", gotErr)
	}
	if immune != "ok" {
		return fmt.Errorf("already-settled promise did not pass through: %v", immune)
	}
	return nil
}

// promiseAdoptionFlattens: a handler returning a promise is adopted, so a
// chain built over async stages yields the final value, never a *Promise
// as a value; a resolution cycle rejects instead of hanging the loop.
func promiseAdoptionFlattens(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	stage := func(tag string, d time.Duration) *asyncutil.Promise {
		return asyncutil.NewPromise(l, func(resolve func(any), _ func(error)) {
			l.SetTimeout(d, func() { resolve(tag) })
		})
	}
	var got any
	asyncutil.ResolvedPromise(l, nil).
		Then(func(any) (any, error) { return stage("a", time.Duration(seed%3)*time.Millisecond), nil }).
		Then(func(v any) (any, error) {
			if _, isP := v.(*asyncutil.Promise); isP {
				return nil, errors.New("handler received an unadopted *Promise")
			}
			return stage(v.(string)+"b", time.Millisecond), nil
		}).
		Then(func(v any) (any, error) { got = v; return nil, nil })
	var cycleErr error
	var resolveA, resolveB func(any)
	a := asyncutil.NewPromise(l, func(r func(any), _ func(error)) { resolveA = r })
	b := asyncutil.NewPromise(l, func(r func(any), _ func(error)) { resolveB = r })
	resolveA(b)
	resolveB(a)
	b.Catch(func(err error) (any, error) { cycleErr = err; return nil, nil })
	a.Catch(func(err error) (any, error) { return nil, nil })
	if err := runLoop(l); err != nil {
		return err
	}
	if got != "ab" {
		return fmt.Errorf("chain yielded %v, want ab", got)
	}
	if !errors.Is(cycleErr, asyncutil.ErrPromiseCycle) {
		return fmt.Errorf("cycle rejected with %v, want ErrPromiseCycle", cycleErr)
	}
	return nil
}

package conformance

import (
	"fmt"
	"time"

	"nodefz/internal/dnssim"
	"nodefz/internal/eventloop"
	"nodefz/internal/sigsim"
	"nodefz/internal/simfs"
	"nodefz/internal/streams"
)

// extraSuite covers the extended substrates; appended to Suite.
func extraSuite() []Scenario {
	return []Scenario{
		{"stream-pipe-order", streamPipeOrder},
		{"signal-coalescing", signalCoalescing},
		{"dns-lookup-and-cache", dnsLookupAndCache},
		{"fs-watch-order", fsWatchOrder},
	}
}

func streamPipeOrder(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	fs := simfs.New()
	if err := fs.Create("/out"); err != nil {
		return err
	}
	fsa := simfs.Bind(l, fs, 300*time.Microsecond, seed)
	r := streams.NewReadable(l, 16)
	w := streams.NewWritable(l, 16, func(chunk []byte, done func(error)) {
		fsa.Append("/out", chunk, done)
	})
	var pipeErr error
	streams.Pipe(r, w, func(err error) { pipeErr = err })
	go func() {
		for i := 0; i < 8; i++ {
			r.Push([]byte(fmt.Sprintf("|%d", i)))
			time.Sleep(400 * time.Microsecond)
		}
		r.End()
	}()
	if err := runLoop(l); err != nil {
		return err
	}
	if pipeErr != nil {
		return pipeErr
	}
	got, err := fs.ReadFile("/out")
	if err != nil {
		return err
	}
	want := "|0|1|2|3|4|5|6|7"
	if string(got) != want {
		return fmt.Errorf("piped %q, want %q", got, want)
	}
	return nil
}

func signalCoalescing(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	p := sigsim.NewProcess(l)
	handled := 0
	p.On(sigsim.SIGHUP, func(sigsim.Signal) { handled++ })
	p.On(sigsim.SIGTERM, func(sigsim.Signal) { p.Close(nil) })
	l.SetTimeout(time.Millisecond, func() {
		p.Kill(sigsim.SIGHUP)
		p.Kill(sigsim.SIGHUP) // pending: must coalesce
		l.SetTimeout(5*time.Millisecond, func() { p.Kill(sigsim.SIGTERM) })
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if handled != 1 {
		return fmt.Errorf("pending SIGHUP delivered %d times, want 1", handled)
	}
	return nil
}

func dnsLookupAndCache(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	r := dnssim.New(l, dnssim.Config{Seed: seed, Latency: time.Millisecond, TTL: time.Second})
	r.Register("svc", "10.0.0.7")
	okFirst, okSecond := false, false
	r.Lookup("svc", func(addrs []string, err error) {
		okFirst = err == nil && len(addrs) == 1 && addrs[0] == "10.0.0.7"
		r.Lookup("svc", func(addrs []string, err error) {
			okSecond = err == nil && len(addrs) == 1
		})
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if !okFirst || !okSecond {
		return fmt.Errorf("lookups failed: first=%v second=%v", okFirst, okSecond)
	}
	if r.Lookups() != 1 {
		return fmt.Errorf("cache miss count = %d, want 1 (second lookup cached)", r.Lookups())
	}
	return nil
}

func fsWatchOrder(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	fs := simfs.New()
	var ops []simfs.WatchOp
	var w *simfs.Watcher
	w = fs.Watch(l, "/", func(ev simfs.WatchEvent) {
		ops = append(ops, ev.Op)
		if ev.Op == simfs.WatchRemove {
			w.Close()
		}
	})
	l.SetTimeout(time.Millisecond, func() {
		if err := fs.Mkdir("/d"); err != nil {
			return
		}
		if err := fs.Create("/d/f"); err != nil {
			return
		}
		if err := fs.Unlink("/d/f"); err != nil {
			return
		}
	})
	if err := runLoop(l); err != nil {
		return err
	}
	want := []simfs.WatchOp{simfs.WatchMkdir, simfs.WatchCreate, simfs.WatchRemove}
	if len(ops) != len(want) {
		return fmt.Errorf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			return fmt.Errorf("watch events reordered: %v", ops)
		}
	}
	return nil
}

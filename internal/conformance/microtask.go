package conformance

import (
	"fmt"
	"time"

	"nodefz/internal/eventloop"
)

// microtaskSuite checks the queueMicrotask contract: FIFO within the queue,
// drained after the current callback and before any macrotask, nested
// microtasks run in the same drain cycle, and microtasks interleave with
// process.nextTick in registration order (the runtime models one unified
// microtask queue — a documented fidelity choice, so it is pinned here).
func microtaskSuite() []Scenario {
	return []Scenario{
		{"microtask-fifo", microtaskFIFO},
		{"microtask-before-macrotask", microtaskBeforeMacrotask},
		{"microtask-nested-same-cycle", microtaskNested},
		{"microtask-tick-unified-order", microtaskTickOrder},
	}
}

func microtaskFIFO(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	var order []int
	l.SetTimeout(time.Millisecond, func() {
		for i := 0; i < 6; i++ {
			i := i
			l.QueueMicrotask(func() { order = append(order, i) })
		}
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if len(order) != 6 {
		return fmt.Errorf("ran %d/6 microtasks", len(order))
	}
	for i, v := range order {
		if v != i {
			return fmt.Errorf("microtasks out of FIFO order: %v", order)
		}
	}
	return nil
}

func microtaskBeforeMacrotask(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	var order []string
	l.SetTimeout(time.Millisecond, func() {
		l.SetImmediate(func() { order = append(order, "immediate") })
		l.SetTimeout(0, func() { order = append(order, "timer") })
		l.QueueMicrotask(func() { order = append(order, "microtask") })
		order = append(order, "sync")
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if len(order) != 4 || order[0] != "sync" || order[1] != "microtask" {
		return fmt.Errorf("order = %v, want microtask right after its scheduling callback", order)
	}
	return nil
}

func microtaskNested(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	var order []string
	l.SetTimeout(time.Millisecond, func() {
		l.SetImmediate(func() { order = append(order, "macrotask") })
		l.QueueMicrotask(func() {
			order = append(order, "outer")
			l.QueueMicrotask(func() { order = append(order, "inner") })
		})
	})
	if err := runLoop(l); err != nil {
		return err
	}
	want := []string{"outer", "inner", "macrotask"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		return fmt.Errorf("order = %v, want %v (nested microtask must drain before the macrotask)", order, want)
	}
	return nil
}

func microtaskTickOrder(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	var order []string
	l.SetTimeout(time.Millisecond, func() {
		l.NextTick(func() { order = append(order, "tick-1") })
		l.QueueMicrotask(func() { order = append(order, "micro-1") })
		l.NextTick(func() { order = append(order, "tick-2") })
		l.QueueMicrotask(func() { order = append(order, "micro-2") })
	})
	if err := runLoop(l); err != nil {
		return err
	}
	want := []string{"tick-1", "micro-1", "tick-2", "micro-2"}
	if len(order) != 4 {
		return fmt.Errorf("ran %d/4 callbacks: %v", len(order), order)
	}
	for i := range want {
		if order[i] != want[i] {
			return fmt.Errorf("order = %v, want %v (unified queue, registration order)", order, want)
		}
	}
	return nil
}

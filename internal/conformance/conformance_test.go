package conformance

import (
	"testing"

	"nodefz/internal/core"
	"nodefz/internal/eventloop"
)

func schedulers(seed int64) map[string]func() eventloop.Scheduler {
	return map[string]func() eventloop.Scheduler{
		"nodeV":   func() eventloop.Scheduler { return eventloop.VanillaScheduler{} },
		"nodeNFZ": func() eventloop.Scheduler { return core.NewNoFuzzScheduler() },
		"nodeFZ":  func() eventloop.Scheduler { return core.NewScheduler(core.StandardParams(), seed) },
		"guided":  func() eventloop.Scheduler { return core.NewGuidedScheduler(seed) },
	}
}

// TestSuiteUnderEveryScheduler is the §4.4 fidelity property: every
// documented guarantee holds whichever scheduler runs the loop.
func TestSuiteUnderEveryScheduler(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for name := range schedulers(0) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				mk := schedulers(seed)[name]
				for _, sc := range Suite() {
					newLoop := func() *eventloop.Loop {
						return eventloop.New(eventloop.Options{Scheduler: mk()})
					}
					if err := sc.Run(newLoop, seed); err != nil {
						t.Errorf("seed %d, %s: %v", seed, sc.Name, err)
					}
				}
			}
		})
	}
}

func TestRunAllReportsNoFailures(t *testing.T) {
	newLoop := func() *eventloop.Loop { return eventloop.New(eventloop.Options{}) }
	if errs := RunAll(newLoop, 42); len(errs) != 0 {
		t.Fatalf("failures: %v", errs)
	}
}

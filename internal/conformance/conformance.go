// Package conformance is the runtime's documented-semantics test suite,
// parameterized by scheduler. It plays the role of the Node.js test suite
// in §4.4 ("Node.fz Fidelity"): a legal fuzzer may reorder what the
// documentation leaves unordered, but every guarantee checked here must
// hold under any scheduler — vanilla, no-fuzz, standard fuzzing, or guided.
//
// The harness's fidelity experiment runs the whole suite under the fuzzing
// scheduler across many seeds; the package's own tests run it under every
// mode.
package conformance

import (
	"bytes"
	"fmt"
	"time"

	"nodefz/internal/asyncutil"
	"nodefz/internal/emitter"
	"nodefz/internal/eventloop"
	"nodefz/internal/kvstore"
	"nodefz/internal/simfs"
	"nodefz/internal/simnet"
)

// Scenario is one conformance check. Run builds a fresh loop from the
// factory, drives a workload, and returns an error if a documented
// guarantee was violated.
type Scenario struct {
	Name string
	Run  func(newLoop func() *eventloop.Loop, seed int64) error
}

// Suite returns all scenarios.
func Suite() []Scenario {
	base := []Scenario{
		{"timer-never-early", timerNeverEarly},
		{"timer-deadline-registration-order", timerOrder},
		{"interval-repeats", intervalRepeats},
		{"tick-before-events", tickPriority},
		{"immediate-after-poll", immediateRuns},
		{"work-done-after-task", workDone},
		{"work-all-complete", workAllComplete},
		{"emitter-listener-order", emitterOrder},
		{"net-per-connection-fifo", netFIFO},
		{"net-close-after-data", netCloseAfterData},
		{"kv-same-connection-fifo", kvFIFO},
		{"fs-roundtrip", fsRoundtrip},
		{"parallel-collects-all", parallelCollects},
		{"waterfall-threads-results", waterfallThreads},
	}
	base = append(base, extraSuite()...)
	base = append(base, microtaskSuite()...)
	return append(base, promiseSuite()...)
}

// RunAll executes every scenario once and returns the failures.
func RunAll(newLoop func() *eventloop.Loop, seed int64) []error {
	var errs []error
	for _, sc := range Suite() {
		if err := sc.Run(newLoop, seed); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", sc.Name, err))
		}
	}
	return errs
}

func runLoop(l *eventloop.Loop) error {
	done := make(chan error, 1)
	go func() { done <- l.Run() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		l.Stop()
		<-done
		return fmt.Errorf("loop did not terminate")
	}
}

func timerNeverEarly(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	const d = 10 * time.Millisecond
	start := time.Now()
	var fired time.Time
	l.SetTimeout(d, func() { fired = time.Now() })
	if err := runLoop(l); err != nil {
		return err
	}
	if got := fired.Sub(start); got < d {
		return fmt.Errorf("timer fired after %v, before its %v deadline", got, d)
	}
	return nil
}

func timerOrder(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		l.SetTimeout(5*time.Millisecond, func() { order = append(order, i) })
	}
	if err := runLoop(l); err != nil {
		return err
	}
	if len(order) != 6 {
		return fmt.Errorf("ran %d/6 timers", len(order))
	}
	for i, v := range order {
		if v != i {
			return fmt.Errorf("equal-deadline timers out of registration order: %v", order)
		}
	}
	return nil
}

func intervalRepeats(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	n := 0
	var tm *eventloop.Timer
	tm = l.SetInterval(2*time.Millisecond, func() {
		n++
		if n == 3 {
			tm.Stop()
		}
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if n != 3 {
		return fmt.Errorf("interval ran %d times, want 3", n)
	}
	return nil
}

func tickPriority(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	var order []string
	l.SetTimeout(time.Millisecond, func() {
		l.SetImmediate(func() { order = append(order, "immediate") })
		l.NextTick(func() { order = append(order, "tick") })
		order = append(order, "timer")
	})
	if err := runLoop(l); err != nil {
		return err
	}
	want := []string{"timer", "tick", "immediate"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		return fmt.Errorf("order = %v, want %v", order, want)
	}
	return nil
}

func immediateRuns(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	n := 0
	l.SetImmediate(func() {
		n++
		l.SetImmediate(func() { n++ })
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if n != 2 {
		return fmt.Errorf("immediates ran %d times, want 2", n)
	}
	return nil
}

func workDone(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	taskDone := false
	orderOK := true
	l.QueueWork("t", func() (any, error) {
		taskDone = true
		return 7, nil
	}, func(res any, err error) {
		if !taskDone {
			orderOK = false
		}
		if res != 7 || err != nil {
			orderOK = false
		}
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if !orderOK {
		return fmt.Errorf("done callback ran before its task completed")
	}
	return nil
}

func workAllComplete(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	const n = 24
	done := 0
	for i := 0; i < n; i++ {
		l.QueueWork("t", func() (any, error) { return nil, nil }, func(any, error) { done++ })
	}
	if err := runLoop(l); err != nil {
		return err
	}
	if done != n {
		return fmt.Errorf("completed %d/%d tasks", done, n)
	}
	return nil
}

func emitterOrder(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	e := emitter.New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.On("ev", func(...any) { order = append(order, i) })
	}
	bad := false
	l.SetTimeout(time.Millisecond, func() {
		e.Emit("ev")
		for i, v := range order {
			if v != i {
				bad = true
			}
		}
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if bad || len(order) != 5 {
		return fmt.Errorf("listener order violated: %v", order)
	}
	return nil
}

func netFIFO(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	net := simnet.New(simnet.Config{Seed: seed, MinLatency: time.Millisecond, MaxLatency: 2 * time.Millisecond})
	defer net.Close()
	const n = 20
	var got []int
	ln, err := net.Listen(l, "srv", func(c *simnet.Conn) {
		c.OnData(func(msg []byte) {
			var v int
			fmt.Sscanf(string(msg), "%d", &v)
			got = append(got, v)
		})
	})
	if err != nil {
		return err
	}
	net.Dial(l, "srv", func(c *simnet.Conn, err error) {
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			_ = c.Send([]byte(fmt.Sprintf("%d", i)))
		}
		c.Close()
		ln.Close(nil)
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if len(got) != n {
		return fmt.Errorf("received %d/%d messages", len(got), n)
	}
	for i, v := range got {
		if v != i {
			return fmt.Errorf("per-connection order violated at %d: %v", i, got[:i+1])
		}
	}
	return nil
}

func netCloseAfterData(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	net := simnet.New(simnet.Config{Seed: seed, MinLatency: time.Millisecond, MaxLatency: 2 * time.Millisecond})
	defer net.Close()
	var events []string
	ln, err := net.Listen(l, "srv", func(c *simnet.Conn) {
		c.OnData(func(msg []byte) { events = append(events, "data") })
		c.OnClose(func() { events = append(events, "close") })
	})
	if err != nil {
		return err
	}
	net.Dial(l, "srv", func(c *simnet.Conn, err error) {
		if err != nil {
			return
		}
		_ = c.Send([]byte("x"))
		c.Close()
		ln.Close(nil)
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if len(events) != 2 || events[0] != "data" || events[1] != "close" {
		return fmt.Errorf("events = %v, want [data close]", events)
	}
	return nil
}

func kvFIFO(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	net := simnet.New(simnet.Config{Seed: seed, MinLatency: time.Millisecond, MaxLatency: 2 * time.Millisecond})
	defer net.Close()
	srv, err := kvstore.NewServer(l, net, "db")
	if err != nil {
		return err
	}
	var final string
	kvstore.NewClient(l, net, "db", 1, func(c *kvstore.Client, err error) {
		if err != nil {
			return
		}
		c.Set("k", "first", nil)
		c.Set("k", "second", nil)
		c.Get("k", func(val string, ok bool, err error) {
			final = val
			c.Close()
			srv.Close()
		})
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if final != "second" {
		return fmt.Errorf("single-connection commands reordered: final=%q", final)
	}
	return nil
}

func fsRoundtrip(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	fs := simfs.New()
	fsa := simfs.Bind(l, fs, time.Millisecond, seed)
	payload := []byte("conformance payload")
	var got []byte
	var opErr error
	fsa.WriteFile("/f", payload, func(err error) {
		if err != nil {
			opErr = err
			return
		}
		fsa.ReadFile("/f", func(data []byte, err error) {
			got, opErr = data, err
		})
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if opErr != nil {
		return opErr
	}
	if !bytes.Equal(got, payload) {
		return fmt.Errorf("read %q, wrote %q", got, payload)
	}
	return nil
}

func parallelCollects(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	fs := simfs.New()
	fsa := simfs.Bind(l, fs, time.Millisecond, seed)
	var results []any
	var tasks []asyncutil.Task
	for i := 0; i < 5; i++ {
		i := i
		tasks = append(tasks, func(done asyncutil.Callback) {
			fsa.WriteFile(fmt.Sprintf("/p%d", i), []byte{byte(i)}, func(err error) {
				done(err, i)
			})
		})
	}
	asyncutil.Parallel(tasks, func(err error, res []any) {
		if err == nil {
			results = res
		}
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if len(results) != 5 {
		return fmt.Errorf("parallel collected %d/5 results", len(results))
	}
	for i, r := range results {
		if r != i {
			return fmt.Errorf("results out of task order: %v", results)
		}
	}
	return nil
}

func waterfallThreads(newLoop func() *eventloop.Loop, seed int64) error {
	l := newLoop()
	var got any
	l.SetTimeout(time.Millisecond, func() {
		asyncutil.Waterfall([]asyncutil.Step{
			func(prev any, next asyncutil.Callback) {
				l.SetImmediate(func() { next(nil, 2) })
			},
			func(prev any, next asyncutil.Callback) {
				l.NextTick(func() { next(nil, prev.(int)*21) })
			},
		}, func(err error, result any) { got = result })
	})
	if err := runLoop(l); err != nil {
		return err
	}
	if got != 42 {
		return fmt.Errorf("waterfall result = %v, want 42", got)
	}
	return nil
}

package frand

import (
	"math/rand"
	"testing"
)

// TestDeterministic pins the stream to the seed: same seed, same values.
func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
	if New(1).Int63() == New(2).Int63() {
		t.Fatal("different seeds produced the same first draw")
	}
}

// TestSeedEquivalence is the arena contract: reseeding a used source in
// place must restore exactly the stream a freshly built source produces.
func TestSeedEquivalence(t *testing.T) {
	src := NewSource(7)
	used := rand.New(src)
	for i := 0; i < 137; i++ {
		used.Int63() // burn state
	}
	used.Seed(99) // rand.Rand.Seed delegates to Source.Seed
	fresh := New(99)
	for i := 0; i < 1000; i++ {
		if x, y := used.Int63(), fresh.Int63(); x != y {
			t.Fatalf("draw %d diverged after reseed: %d vs %d", i, x, y)
		}
	}
}

// TestSpread is a cheap sanity check that the generator is not obviously
// degenerate: over 64k draws every byte value appears in the low byte.
func TestSpread(t *testing.T) {
	var seen [256]bool
	s := NewSource(1)
	for i := 0; i < 1<<16; i++ {
		seen[byte(s.Uint64())] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("low byte value %d never drawn in 64k draws", v)
		}
	}
}

// Package frand provides the deterministic pseudo-random source every
// per-trial component seeds from. It exists for one reason: math/rand's
// default rngSource pays ~600 feedback-register iterations on every Seed,
// which a trial arena re-runs once per collaborator per trial — at
// 100k-trials/sec ambitions that seeding alone was >10% of a virtual-time
// trial's CPU. The splitmix64 generator here seeds in one store and still
// yields a high-quality 64-bit stream (it is the generator Vigna recommends
// for seeding xoshiro state, and passes BigCrush on its own).
//
// Determinism contract: for a fixed seed the stream is a pure function of
// the seed, so every property the harness relies on (same seed → same
// schedule, arena reset ≡ fresh build) is preserved. The *stream differs*
// from math/rand's rngSource, so schedules are a different — equally
// arbitrary — function of the seed than they were before this package.
package frand

import "math/rand"

// Source is a splitmix64 rand.Source64. Not safe for concurrent use;
// wrap it in rand.New like any other source.
type Source struct {
	state uint64
}

// NewSource returns a splitmix64 source seeded with seed.
func NewSource(seed int64) *Source {
	return &Source{state: uint64(seed)}
}

// New returns a *rand.Rand drawing from a splitmix64 source — a drop-in
// replacement for rand.New(rand.NewSource(seed)) whose Seed is O(1).
func New(seed int64) *rand.Rand {
	return rand.New(NewSource(seed))
}

// Seed resets the source to the stream of the given seed.
func (s *Source) Seed(seed int64) {
	s.state = uint64(seed)
}

// Uint64 advances the splitmix64 state and returns the next output.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

package httpsim

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"nodefz/internal/core"
	"nodefz/internal/eventloop"
	"nodefz/internal/simnet"
)

func runLoop(t *testing.T, l *eventloop.Loop) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- l.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("loop did not terminate")
	}
}

func fastNet(seed int64) *simnet.Network {
	return simnet.New(simnet.Config{Seed: seed, MinLatency: 200 * time.Microsecond, MaxLatency: 800 * time.Microsecond})
}

// env sets up a server with routes and a connected client.
func env(t *testing.T, poolSize int, setup func(s *Server), fn func(l *eventloop.Loop, c *Client, done func())) {
	t.Helper()
	l := eventloop.New(eventloop.Options{})
	net := fastNet(7)
	defer net.Close()
	srv, err := NewServer(l, net, "api")
	if err != nil {
		t.Fatal(err)
	}
	setup(srv)
	NewClient(l, net, "api", poolSize, func(c *Client, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		fn(l, c, func() {
			c.Close()
			srv.Close()
		})
	})
	runLoop(t, l)
}

func TestGetRoundTrip(t *testing.T) {
	env(t, 1, func(s *Server) {
		s.Handle("GET", "/hello", func(w *ResponseWriter, r *Request) {
			w.SetHeader("X-Served-By", "nodefz")
			w.Text(StatusOK, "world")
		})
	}, func(l *eventloop.Loop, c *Client, done func()) {
		c.Get("/hello", func(resp *Response, err error) {
			if err != nil || resp.Status != StatusOK || string(resp.Body) != "world" {
				t.Errorf("resp = %+v, %v", resp, err)
			}
			if resp.Header["X-Served-By"] != "nodefz" {
				t.Errorf("header missing: %v", resp.Header)
			}
			done()
		})
	})
}

func TestPostBodyEcho(t *testing.T) {
	payload := []byte("some\r\npayload with\r\n\r\nCRLFs")
	env(t, 1, func(s *Server) {
		s.Handle("POST", "/echo", func(w *ResponseWriter, r *Request) {
			w.End(StatusCreated, r.Body)
		})
	}, func(l *eventloop.Loop, c *Client, done func()) {
		c.Post("/echo", payload, func(resp *Response, err error) {
			if err != nil || resp.Status != StatusCreated || !bytes.Equal(resp.Body, payload) {
				t.Errorf("resp = %+v, %v", resp, err)
			}
			done()
		})
	})
}

func TestRouting(t *testing.T) {
	env(t, 1, func(s *Server) {
		s.Handle("GET", "/a", func(w *ResponseWriter, r *Request) { w.Text(StatusOK, "exact") })
		s.Handle("GET", "/files/*", func(w *ResponseWriter, r *Request) { w.Text(StatusOK, "prefix:"+r.Path) })
	}, func(l *eventloop.Loop, c *Client, done func()) {
		c.Get("/a", func(resp *Response, err error) {
			if string(resp.Body) != "exact" {
				t.Errorf("exact route: %+v", resp)
			}
			c.Get("/files/x/y", func(resp *Response, err error) {
				if string(resp.Body) != "prefix:/files/x/y" {
					t.Errorf("prefix route: %+v", resp)
				}
				c.Get("/missing", func(resp *Response, err error) {
					if resp.Status != StatusNotFound {
						t.Errorf("missing route status = %d", resp.Status)
					}
					c.Post("/a", nil, func(resp *Response, err error) {
						if resp.Status != StatusMethodNotAllowed {
							t.Errorf("wrong-method status = %d", resp.Status)
						}
						done()
					})
				})
			})
		})
	})
}

func TestAsyncHandlerResponds(t *testing.T) {
	env(t, 1, func(s *Server) {
		s.Handle("GET", "/slow", func(w *ResponseWriter, r *Request) {
			// Partitioned response composition (§2.3): reply from a later
			// callback.
			w.SetHeader("X-Phase", "deferred")
			// The loop variable is reachable through the writer's conn.
		})
	}, func(l *eventloop.Loop, c *Client, done func()) { done() })

	// Full async variant with a timer:
	l := eventloop.New(eventloop.Options{})
	net := fastNet(9)
	defer net.Close()
	srv, err := NewServer(l, net, "api")
	if err != nil {
		t.Fatal(err)
	}
	srv.Handle("GET", "/slow", func(w *ResponseWriter, r *Request) {
		l.SetTimeout(2*time.Millisecond, func() { w.Text(StatusOK, "late") })
	})
	NewClient(l, net, "api", 1, func(c *Client, err error) {
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		c.Get("/slow", func(resp *Response, err error) {
			if err != nil || string(resp.Body) != "late" {
				t.Errorf("resp = %+v, %v", resp, err)
			}
			c.Close()
			srv.Close()
		})
	})
	runLoop(t, l)
}

func TestDoubleEndIsDropped(t *testing.T) {
	env(t, 1, func(s *Server) {
		s.Handle("GET", "/twice", func(w *ResponseWriter, r *Request) {
			w.Text(StatusOK, "first")
			w.Text(StatusInternalServerError, "second") // must be ignored
			if !w.Sent() {
				t.Error("writer does not report sent")
			}
		})
	}, func(l *eventloop.Loop, c *Client, done func()) {
		c.Get("/twice", func(resp *Response, err error) {
			if resp.Status != StatusOK || string(resp.Body) != "first" {
				t.Errorf("resp = %+v", resp)
			}
			done()
		})
	})
}

func TestKeepAliveSequentialRequests(t *testing.T) {
	env(t, 1, func(s *Server) {
		n := 0
		s.Handle("GET", "/n", func(w *ResponseWriter, r *Request) {
			n++
			w.Text(StatusOK, fmt.Sprintf("%d", n))
		})
	}, func(l *eventloop.Loop, c *Client, done func()) {
		var got []string
		for i := 0; i < 3; i++ {
			c.Get("/n", func(resp *Response, err error) {
				got = append(got, string(resp.Body))
				if len(got) == 3 {
					// One connection: responses in request order.
					if got[0] != "1" || got[1] != "2" || got[2] != "3" {
						t.Errorf("got %v", got)
					}
					done()
				}
			})
		}
	})
}

func TestClientClosedRequestsFail(t *testing.T) {
	env(t, 1, func(s *Server) {}, func(l *eventloop.Loop, c *Client, done func()) {
		done() // close first
		c.Get("/x", func(resp *Response, err error) {
			if !errors.Is(err, ErrClientClosed) {
				t.Errorf("err = %v", err)
			}
		})
	})
}

func TestServerCloseRefusesNewConns(t *testing.T) {
	l := eventloop.New(eventloop.Options{})
	net := fastNet(11)
	defer net.Close()
	srv, err := NewServer(l, net, "api")
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	gotErr := false
	NewClient(l, net, "api", 1, func(c *Client, err error) {
		gotErr = err != nil
	})
	runLoop(t, l)
	if !gotErr {
		t.Fatal("dial to closed server succeeded")
	}
}

func TestMarshalParseRoundTripQuick(t *testing.T) {
	f := func(method byte, path []byte, hk, hv byte, body []byte) bool {
		m := "M" + string('A'+method%26)
		p := "/" + sanitizeToken(path)
		req := &Request{
			Method: m,
			Path:   p,
			Header: map[string]string{
				"X-" + string('A'+hk%26): string('a' + hv%26),
			},
			Body: body,
		}
		back, err := parseRequest(marshalRequest(req))
		if err != nil {
			return false
		}
		return back.Method == m && back.Path == p && bytes.Equal(back.Body, body) &&
			back.Header["X-"+string('A'+hk%26)] == string('a'+hv%26)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sanitizeToken(b []byte) string {
	out := make([]byte, 0, len(b))
	for _, c := range b {
		if c > ' ' && c < 127 {
			out = append(out, c)
		}
	}
	return string(out)
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range [][]byte{
		nil,
		[]byte("not http"),
		[]byte("GET /\r\n\r\n"), // missing version
		[]byte("GET / HTTP/1.1\r\nNoColonHeader\r\n\r\n"),                 // bad header
		[]byte("GET / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort"),       // wrong length
		[]byte("HTTP/1.1 abc Bad\r\n\r\n"),                                // for responses below
		[]byte("GET  HTTP/1.1\r\n\r\n"),                                   // missing path
		[]byte("GET nopath HTTP/1.1\r\nContent-Length: 0\r\n\r\n"),        // path without slash
		[]byte("GET / HTTP/1.1 extra words\r\nContent-Length: 0\r\n\r\n"), // extra tokens
	} {
		if _, err := parseRequest(bad); err == nil {
			t.Errorf("parseRequest accepted %q", bad)
		}
	}
	if _, err := parseResponse([]byte("HTTP/1.1 abc Bad\r\nContent-Length: 0\r\n\r\n")); err == nil {
		t.Error("parseResponse accepted a non-numeric status")
	}
	if _, err := parseResponse([]byte("junk\r\nContent-Length: 0\r\n\r\n")); err == nil {
		t.Error("parseResponse accepted a junk status line")
	}
}

func TestStatusText(t *testing.T) {
	if StatusText(StatusOK) != "OK" || StatusText(777) == "" {
		t.Fatal("StatusText broken")
	}
}

// TestPooledClientUnderFuzzer: many concurrent requests over a pool under
// the fuzzing scheduler; every request gets exactly one response.
func TestPooledClientUnderFuzzer(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		l := eventloop.New(eventloop.Options{
			Scheduler: core.NewScheduler(core.StandardParams(), seed),
		})
		net := fastNet(seed)
		srv, err := NewServer(l, net, "api")
		if err != nil {
			t.Fatal(err)
		}
		srv.Handle("GET", "/work/*", func(w *ResponseWriter, r *Request) {
			l.SetImmediate(func() { w.Text(StatusOK, r.Path) })
		})
		const n = 12
		responses := 0
		NewClient(l, net, "api", 3, func(c *Client, err error) {
			if err != nil {
				t.Errorf("connect: %v", err)
				return
			}
			for i := 0; i < n; i++ {
				path := fmt.Sprintf("/work/%d", i)
				c.Get(path, func(resp *Response, err error) {
					if err == nil && string(resp.Body) == path {
						responses++
					}
					if responses == n {
						c.Close()
						srv.Close()
					}
				})
			}
		})
		runLoop(t, l)
		net.Close()
		if responses != n {
			t.Fatalf("seed %d: %d/%d responses", seed, responses, n)
		}
	}
}

// Package httpsim is a small HTTP/1.x-flavoured request/response layer over
// simnet: the application protocol the paper's subjects (web servers,
// REST APIs, proxies) actually speak. One simnet message frames one
// complete request or response; connections are keep-alive and serve
// requests sequentially, and a client distributes concurrent requests over
// a connection pool — which is exactly the arrival-order nondeterminism of
// §4.2.1.
package httpsim

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Common status codes.
const (
	StatusOK                  = 200
	StatusCreated             = 201
	StatusNoContent           = 204
	StatusBadRequest          = 400
	StatusNotFound            = 404
	StatusMethodNotAllowed    = 405
	StatusConflict            = 409
	StatusInternalServerError = 500
	StatusServiceUnavailable  = 503
)

var statusText = map[int]string{
	StatusOK:                  "OK",
	StatusCreated:             "Created",
	StatusNoContent:           "No Content",
	StatusBadRequest:          "Bad Request",
	StatusNotFound:            "Not Found",
	StatusMethodNotAllowed:    "Method Not Allowed",
	StatusConflict:            "Conflict",
	StatusInternalServerError: "Internal Server Error",
	StatusServiceUnavailable:  "Service Unavailable",
}

// StatusText returns the reason phrase for a status code.
func StatusText(code int) string {
	if s, ok := statusText[code]; ok {
		return s
	}
	return "Status " + strconv.Itoa(code)
}

// ErrMalformed reports an unparsable frame.
var ErrMalformed = errors.New("httpsim: malformed message")

// Request is one HTTP request.
type Request struct {
	Method string
	Path   string
	Header map[string]string
	Body   []byte
}

// Response is one HTTP response.
type Response struct {
	Status int
	Header map[string]string
	Body   []byte
}

func writeHeaders(b *strings.Builder, h map[string]string, bodyLen int) {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "%s: %s\r\n", k, h[k])
	}
	fmt.Fprintf(b, "Content-Length: %d\r\n\r\n", bodyLen)
}

// marshalRequest frames a request.
func marshalRequest(r *Request) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", r.Method, r.Path)
	writeHeaders(&b, r.Header, len(r.Body))
	return append([]byte(b.String()), r.Body...)
}

// marshalResponse frames a response.
func marshalResponse(r *Response) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", r.Status, StatusText(r.Status))
	writeHeaders(&b, r.Header, len(r.Body))
	return append([]byte(b.String()), r.Body...)
}

// splitFrame separates the header block from the body and parses headers.
func splitFrame(msg []byte) (firstLine string, header map[string]string, body []byte, err error) {
	s := string(msg)
	sep := strings.Index(s, "\r\n\r\n")
	if sep < 0 {
		return "", nil, nil, ErrMalformed
	}
	head := s[:sep]
	body = msg[sep+4:]
	lines := strings.Split(head, "\r\n")
	if len(lines) == 0 {
		return "", nil, nil, ErrMalformed
	}
	firstLine = lines[0]
	header = make(map[string]string, len(lines)-1)
	for _, line := range lines[1:] {
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return "", nil, nil, ErrMalformed
		}
		header[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	if clen, ok := header["Content-Length"]; ok {
		n, err := strconv.Atoi(clen)
		if err != nil || n != len(body) {
			return "", nil, nil, ErrMalformed
		}
		delete(header, "Content-Length")
	}
	return firstLine, header, body, nil
}

// parseRequest parses a framed request.
func parseRequest(msg []byte) (*Request, error) {
	first, header, body, err := splitFrame(msg)
	if err != nil {
		return nil, err
	}
	parts := strings.Split(first, " ")
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") || parts[0] == "" || !strings.HasPrefix(parts[1], "/") {
		return nil, ErrMalformed
	}
	return &Request{Method: parts[0], Path: parts[1], Header: header, Body: body}, nil
}

// parseResponse parses a framed response.
func parseResponse(msg []byte) (*Response, error) {
	first, header, body, err := splitFrame(msg)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(first, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, ErrMalformed
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, ErrMalformed
	}
	return &Response{Status: status, Header: header, Body: body}, nil
}

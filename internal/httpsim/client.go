package httpsim

import (
	"errors"

	"nodefz/internal/eventloop"
	"nodefz/internal/simnet"
)

// ErrClientClosed reports a request issued after Client.Close.
var ErrClientClosed = errors.New("httpsim: client closed")

// clientConn is one keep-alive connection: requests on it are served
// strictly in order (per-connection FIFO), one response per request.
type clientConn struct {
	conn    *simnet.Conn
	pending []func(*Response, error)
}

// Client issues requests to one server address over a keep-alive
// connection pool. Like a browser or a driver, concurrent requests are
// striped round-robin across connections, so responses to requests issued
// back-to-back may arrive in either order — the §4.2.1 nondeterminism.
// PoolSize 1 restores strict ordering.
type Client struct {
	loop   *eventloop.Loop
	conns  []*clientConn
	next   int
	closed bool
}

// NewClient dials poolSize keep-alive connections to addr; ready runs on
// loop with the client (or the first dial error).
func NewClient(l *eventloop.Loop, net *simnet.Network, addr string, poolSize int, ready func(*Client, error)) {
	if poolSize < 1 {
		poolSize = 1
	}
	c := &Client{loop: l}
	remaining := poolSize
	failed := false
	for i := 0; i < poolSize; i++ {
		net.Dial(l, addr, func(conn *simnet.Conn, err error) {
			if failed {
				if conn != nil {
					conn.Close()
				}
				return
			}
			if err != nil {
				failed = true
				ready(nil, err)
				return
			}
			cc := &clientConn{conn: conn}
			conn.OnData(func(msg []byte) {
				if len(cc.pending) == 0 {
					return // stray frame
				}
				cb := cc.pending[0]
				cc.pending = cc.pending[1:]
				resp, perr := parseResponse(msg)
				cb(resp, perr)
			})
			conn.OnClose(func() {
				// Fail outstanding requests on this connection.
				pend := cc.pending
				cc.pending = nil
				for _, cb := range pend {
					cb(nil, ErrClientClosed)
				}
			})
			c.conns = append(c.conns, cc)
			remaining--
			if remaining == 0 {
				ready(c, nil)
			}
		})
	}
}

// Do issues a request; cb runs on the loop with the response. Must be
// called from the loop.
func (c *Client) Do(method, path string, body []byte, cb func(*Response, error)) {
	if cb == nil {
		cb = func(*Response, error) {}
	}
	if c.closed || len(c.conns) == 0 {
		c.loop.NextTickNamed("http-err", func() { cb(nil, ErrClientClosed) })
		return
	}
	cc := c.conns[c.next%len(c.conns)]
	c.next++
	req := &Request{Method: method, Path: path, Body: body, Header: map[string]string{}}
	if err := cc.conn.Send(marshalRequest(req)); err != nil {
		c.loop.NextTickNamed("http-err", func() { cb(nil, err) })
		return
	}
	cc.pending = append(cc.pending, cb)
}

// Get issues a GET.
func (c *Client) Get(path string, cb func(*Response, error)) { c.Do("GET", path, nil, cb) }

// Post issues a POST.
func (c *Client) Post(path string, body []byte, cb func(*Response, error)) {
	c.Do("POST", path, body, cb)
}

// Put issues a PUT.
func (c *Client) Put(path string, body []byte, cb func(*Response, error)) {
	c.Do("PUT", path, body, cb)
}

// Delete issues a DELETE.
func (c *Client) Delete(path string, cb func(*Response, error)) { c.Do("DELETE", path, nil, cb) }

// Close closes the pool; outstanding requests fail with ErrClientClosed.
func (c *Client) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, cc := range c.conns {
		cc.conn.Close()
	}
}

package httpsim

import (
	"strings"

	"nodefz/internal/eventloop"
	"nodefz/internal/simnet"
)

// Handler serves one request. It runs on the server's loop and must
// eventually call exactly one of w.End / w.Text / w.Error — possibly from
// a later callback (the whole point of the EDA: partition the response
// composition, §2.3).
type Handler func(w *ResponseWriter, r *Request)

// ResponseWriter composes and sends one response.
type ResponseWriter struct {
	conn   *simnet.Conn
	header map[string]string
	sent   bool
}

// SetHeader sets a response header; ignored after the response is sent.
func (w *ResponseWriter) SetHeader(k, v string) {
	if !w.sent {
		w.header[k] = v
	}
}

// End sends the response. Subsequent calls are dropped (the double-respond
// guard real frameworks have; COV bugs trip it).
func (w *ResponseWriter) End(status int, body []byte) {
	if w.sent {
		return
	}
	w.sent = true
	_ = w.conn.Send(marshalResponse(&Response{Status: status, Header: w.header, Body: body}))
}

// Text sends a text response.
func (w *ResponseWriter) Text(status int, body string) { w.End(status, []byte(body)) }

// Error sends a bare status.
func (w *ResponseWriter) Error(status int) { w.End(status, nil) }

// Sent reports whether a response has been sent.
func (w *ResponseWriter) Sent() bool { return w.sent }

type route struct {
	method  string
	pattern string // exact path, or prefix ending in "/*"
	h       Handler
}

// Server is an HTTP server bound to a simnet address.
type Server struct {
	loop   *eventloop.Loop
	ln     *simnet.Listener
	routes []route

	served int
	conns  []*simnet.Conn
	closed bool
}

// NewServer starts a server listening on addr.
func NewServer(l *eventloop.Loop, net *simnet.Network, addr string) (*Server, error) {
	s := &Server{loop: l}
	ln, err := net.Listen(l, addr, s.accept)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	return s, nil
}

// Handle registers a handler for method and pattern. A pattern ending in
// "/*" matches any path under the prefix; otherwise the match is exact.
// Routes are tried in registration order.
func (s *Server) Handle(method, pattern string, h Handler) {
	s.routes = append(s.routes, route{method: method, pattern: pattern, h: h})
}

// Served reports the number of requests dispatched to handlers.
func (s *Server) Served() int { return s.served }

// Close stops accepting and closes the server's open connections.
func (s *Server) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.ln.Close(nil)
	for _, c := range s.conns {
		c.Close()
	}
	s.conns = nil
}

func (s *Server) accept(c *simnet.Conn) {
	if s.closed {
		c.Close()
		return
	}
	s.conns = append(s.conns, c)
	c.OnClose(func() {
		for i, e := range s.conns {
			if e == c {
				s.conns = append(s.conns[:i:i], s.conns[i+1:]...)
				break
			}
		}
	})
	c.OnData(func(msg []byte) {
		w := &ResponseWriter{conn: c, header: make(map[string]string)}
		req, err := parseRequest(msg)
		if err != nil {
			w.Error(StatusBadRequest)
			return
		}
		s.served++
		if h := s.match(req); h != nil {
			h(w, req)
			return
		}
		w.Error(StatusNotFound)
	})
}

func (s *Server) match(r *Request) Handler {
	pathMatched := false
	for _, rt := range s.routes {
		ok := false
		if strings.HasSuffix(rt.pattern, "/*") {
			prefix := strings.TrimSuffix(rt.pattern, "/*")
			ok = strings.HasPrefix(r.Path, prefix+"/") || r.Path == prefix
		} else {
			ok = r.Path == rt.pattern
		}
		if !ok {
			continue
		}
		pathMatched = true
		if rt.method == r.Method {
			return rt.h
		}
	}
	if pathMatched {
		return func(w *ResponseWriter, _ *Request) { w.Error(StatusMethodNotAllowed) }
	}
	return nil
}
